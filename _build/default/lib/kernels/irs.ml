(** Kernels modeled on the irs hot loops of Table I.

    irs is the Implicit Radiation Solver; its hot loops are the 27-point
    stencil matrix multiply ([rmatmult3.c]), two loops of the conjugate
    gradient solver ([MatrixSolve.c, MatrixSolveCG]) and the 3-D diffusion
    coefficient construction ([DiffCoeff.c, DiffCoeff_3D]). *)

open Finepar_ir
open Builder

let n = 256
let plane = 18  (* stencil plane stride: neighbors at i +- 1, +- plane, ... *)
let pad = plane + 5  (* widest stencil offset is plane + 4 *)
let len = n + (2 * pad)

(* Offset the induction variable so all stencil accesses stay in bounds. *)
let at off = v "i" +: i (off + pad)

(** irs-1: rmatmult3, the 27-point stencil b[i] = sum of band[k][i] *
    x[i+off_k] (rmatmult3.c:75, 55.6%).  All 27 products are independent;
    the sum tree is balanced in the source, so fibers are wide and the
    partitions almost never need to communicate. *)
let irs_1 =
  let bands =
    [
      ("dbl", -plane - 1); ("dbc", -plane); ("dbr", -plane + 1);
      ("dcl", -1); ("dcc", 0); ("dcr", 1);
      ("dfl", plane - 1); ("dfc", plane); ("dfr", plane + 1);
      ("cbl", -plane - 2); ("cbc", -plane + 2); ("cbr", -plane + 3);
      ("ccl", -2); ("ccc", 2); ("ccr", 3);
      ("cfl", plane + 2); ("cfc", plane + 3); ("cfr", plane - 2);
      ("ubl", -plane + 4); ("ubc", -plane - 3); ("ubr", -plane - 4);
      ("ucl", 4); ("ucc", -3); ("ucr", -4);
      ("ufl", plane + 4); ("ufc", plane - 3); ("ufr", plane - 4);
    ]
  in
  let products =
    List.map (fun (b, off) -> set ("t_" ^ b) (ld b (at 0) *: ld "x" (at off)))
      bands
  in
  let sum3 name (a, b, c) = set name (v a +: v b +: v c) in
  let partials =
    [
      sum3 "s1" ("t_dbl", "t_dbc", "t_dbr");
      sum3 "s2" ("t_dcl", "t_dcc", "t_dcr");
      sum3 "s3" ("t_dfl", "t_dfc", "t_dfr");
      sum3 "s4" ("t_cbl", "t_cbc", "t_cbr");
      sum3 "s5" ("t_ccl", "t_ccc", "t_ccr");
      sum3 "s6" ("t_cfl", "t_cfc", "t_cfr");
      sum3 "s7" ("t_ubl", "t_ubc", "t_ubr");
      sum3 "s8" ("t_ucl", "t_ucc", "t_ucr");
      sum3 "s9" ("t_ufl", "t_ufc", "t_ufr");
    ]
  in
  kernel ~name:"irs-1" ~index:"i" ~lo:0 ~hi:n
    ~arrays:(farr "x" len :: farr "b_out" len
             :: List.map (fun (b, _) -> farr b len) bands)
    ~scalars:[]
    (products @ partials
    @ [
        sum3 "u1" ("s1", "s2", "s3");
        sum3 "u2" ("s4", "s5", "s6");
        sum3 "u3" ("s7", "s8", "s9");
        store "b_out" (at 0) (v "u1" +: v "u2" +: v "u3");
      ])

(** irs-2: the CG inner-product step (MatrixSolve.c:287, 5.1%).  Two
    scalar reductions dominate; the multiplies feed serial accumulator
    chains, so fine-grained threads have little to do. *)
let irs_2 =
  kernel ~name:"irs-2" ~index:"i" ~lo:0 ~hi:n
    ~arrays:[ farr "rv" n; farr "zv" n; farr "pv" n; farr "qv" n ]
    ~scalars:[ fscalar "rdotz"; fscalar "pdotq" ]
    ~live_out:[ "rdotz"; "pdotq" ]
    [
      set "a1" (ld "rv" (v "i") *: ld "zv" (v "i"));
      set "a2" (ld "pv" (v "i") *: ld "qv" (v "i"));
      set "rdotz" (v "rdotz" +: v "a1");
      set "pdotq" (v "pdotq" +: v "a2");
    ]

(** irs-3: the CG update step (MatrixSolve.c:250, 2.5%).  Independent
    elementwise updates of two vectors — parallelizes cleanly. *)
let irs_3 =
  kernel ~name:"irs-3" ~index:"i" ~lo:0 ~hi:n
    ~arrays:
      [ farr "xv" n; farr "rv" n; farr "pv" n; farr "qv" n; farr "zv" n;
        farr "mv" n; farr "sv" n ]
    ~scalars:[ fscalar ~init:0.37 "alpha" ]
    [
      set "px" (ld "pv" (v "i"));
      set "qx" (ld "qv" (v "i"));
      set "precond" (ld "zv" (v "i") /: (ld "mv" (v "i") +: f 1.0e-9));
      store "xv" (v "i") (ld "xv" (v "i") +: (v "alpha" *: v "px"));
      store "rv" (v "i") (ld "rv" (v "i") -: (v "alpha" *: v "qx"));
      store "sv" (v "i") (v "precond" +: (v "px" *: f 0.3));
    ]

(** irs-4: 3-D diffusion coefficient, first hot loop (DiffCoeff.c:191,
    0.6%).  Harmonic means of face coefficients: division-heavy chains
    that cross-couple, with a guard against zero denominators written as
    an assign-only conditional (a control-flow speculation target). *)
let irs_4 =
  kernel ~name:"irs-4" ~index:"i" ~lo:0 ~hi:n
    ~arrays:
      [
        farr "sig" len; farr "dlf" len; farr "dcf" len; farr "drf" len;
        farr "coef" len; farr "cc_out" len;
      ]
    ~scalars:[ fscalar ~init:1.0e-6 "eps"; fscalar ~init:0.5 "half" ]
    [
      set "sl" (ld "sig" (at (-1)) *: ld "dlf" (at 0));
      set "sc" (ld "sig" (at 0) *: ld "dcf" (at 0));
      set "sr" (ld "sig" (at 1) *: ld "drf" (at 0));
      set "den_l" (v "sl" +: v "sc");
      set "den_r" (v "sc" +: v "sr");
      set "ok_l" (v "den_l" >: v "eps");
      set "ok_r" (v "den_r" >: v "eps");
      (* Harmonic means computed unconditionally (they are pure); the
         conditionals only commit or zero them — assign-only arms that
         control-flow speculation turns into selects. *)
      set "hl_v" ((v "sl" *: v "sc") /: v "den_l");
      set "hr_v" ((v "sc" *: v "sr") /: v "den_r");
      set "wl_v" (sqrt_ (v "sl" *: v "sc" +: f 1.0e-12));
      set "wr_v" (sqrt_ (v "sc" *: v "sr" +: f 1.0e-12));
      if_ (v "ok_l") [ set "hl" (v "hl_v" +: v "wl_v") ] [ set "hl" (f 0.0) ];
      if_ (v "ok_r") [ set "hr" (v "hr_v" +: v "wr_v") ] [ set "hr" (f 0.0) ];
      set "gl" (v "hl" *: v "half");
      set "gr" (v "hr" *: v "half");
      set "cc" ((v "gl" +: v "gr") *: ld "coef" (at 0));
      store "cc_out" (at 0) (v "cc");
    ]

(** irs-5: 3-D diffusion coefficient, second hot loop (DiffCoeff.c:317,
    1.5%).  The largest irs body: geometric couplings along the three
    axes, each a division/sqrt chain, combined into face coefficients.
    Wide despite many dependences. *)
let irs_5 =
  let axis ax off =
    [
      set (ax ^ "_a") (ld "sig" (at 0) *: ld ("d" ^ ax) (at 0));
      set (ax ^ "_b") (ld "sig" (at off) *: ld ("d" ^ ax) (at off));
      set (ax ^ "_sum") (v (ax ^ "_a") +: v (ax ^ "_b") +: f 1.0e-9);
      set (ax ^ "_prod") (v (ax ^ "_a") *: v (ax ^ "_b"));
      set (ax ^ "_h") (v (ax ^ "_prod") /: v (ax ^ "_sum"));
      set (ax ^ "_g") (sqrt_ (v (ax ^ "_prod") +: f 1.0e-12));
      set (ax ^ "_m") ((v (ax ^ "_h") +: v (ax ^ "_g")) *: f 0.5);
      set (ax ^ "_w") (v (ax ^ "_m") /: (v (ax ^ "_g") +: f 1.0));
    ]
  in
  kernel ~name:"irs-5" ~index:"i" ~lo:0 ~hi:n
    ~arrays:
      [
        farr "sig" len; farr "dx" len; farr "dy" len; farr "dz" len;
        farr "vol" len; farr "cx_out" len; farr "cy_out" len;
        farr "cz_out" len; farr "dg_out" len;
      ]
    ~scalars:[ fscalar ~init:0.25 "quart" ]
    (axis "x" 1 @ axis "y" plane @ axis "z" (plane + 1)
    @ [
        set "vinv" (f 1.0 /: ld "vol" (at 0));
        (* Coefficient floor along the x axis: pure value selection. *)
        if_ (v "x_w" >: f 1.0e-6)
          [ set "x_wf" (v "x_w") ]
          [ set "x_wf" (v "x_g" *: f 0.5) ];
        set "cx" (v "x_wf" *: v "vinv");
        set "cy" (v "y_w" *: v "vinv");
        set "cz" (v "z_w" *: v "vinv");
        set "diag"
          ((v "cx" +: v "cy" +: v "cz") *: v "quart"
          +: (v "x_m" +: v "y_m" +: v "z_m"));
        store "cx_out" (at 0) (v "cx");
        store "cy_out" (at 0) (v "cy");
        store "cz_out" (at 0) (v "cz");
        store "dg_out" (at 0) (v "diag");
      ])

let workload ?(seed = 11) (k : Kernel.t) = Workload.default ~seed k

let all = [ irs_1; irs_2; irs_3; irs_4; irs_5 ]
