(** Deterministic synthetic workload generation.

    The paper extracts each hot loop "into a separate kernel program,
    together with the necessary initialization code from the main
    application" (Section V).  Our initialization code is a seeded
    splitmix64 generator, so every run of every experiment sees identical
    data. *)

type rng = { mutable state : int64; }
val rng : int -> rng
val next_int64 : rng -> int64
val float_in : rng -> float -> float -> float
val int_below : rng -> int -> int
val farray :
  ?lo:float -> ?hi:float -> rng -> int -> Finepar_ir.Types.value array
val iarray_indices : rng -> int -> bound:int -> Finepar_ir.Types.value array
val iarray_ascending :
  rng -> int -> max_step:int -> Finepar_ir.Types.value array
val iarray_small : rng -> int -> bound:int -> Finepar_ir.Types.value array
val default :
  ?seed:int ->
  Finepar_ir.Kernel.t -> (string * Finepar_ir.Types.value array) list
