(** The full 51-loop characterization corpus of Section IV.

    The paper profiled the five Sequoia tier-1 applications, found 51 hot
    innermost loops, and excluded 33 of them as unsuitable for
    fine-grained parallelization:

    - 6 initialization loops without arithmetic;
    - 25 loops better suited to traditional loop parallelization
      (16 simple elementwise loops, 8 scalar reductions, and 1 array
      reduction — the amg loop);
    - 2 loops (in umt2k) with many conditionals whose variables chain
      read-after-write.

    The remaining 18 are the evaluation kernels ({!Registry}).  This
    module provides synthetic stand-ins for the 33 excluded loops so the
    {!Finepar_characterize} classifier can reproduce the funnel. *)

open Finepar_ir
open Builder

let n = 128

(* ------------------------------------------------------------------ *)
(* 6 initialization loops: assignments without arithmetic.             *)

let init_loops =
  [
    kernel ~name:"init-zero" ~index:"i" ~lo:0 ~hi:n
      ~arrays:[ farr "a" n ] ~scalars:[]
      [ store "a" (v "i") (f 0.0) ];
    kernel ~name:"init-const" ~index:"i" ~lo:0 ~hi:n
      ~arrays:[ farr "a" n ] ~scalars:[ fscalar ~init:3.5 "c" ]
      [ store "a" (v "i") (v "c") ];
    kernel ~name:"init-copy" ~index:"i" ~lo:0 ~hi:n
      ~arrays:[ farr "a" n; farr "b" n ] ~scalars:[]
      [ store "b" (v "i") (ld "a" (v "i")) ];
    kernel ~name:"init-two" ~index:"i" ~lo:0 ~hi:n
      ~arrays:[ farr "a" n; farr "b" n ] ~scalars:[ fscalar "z" ]
      [ store "a" (v "i") (v "z"); store "b" (v "i") (v "z") ];
    kernel ~name:"init-gathercopy" ~index:"i" ~lo:0 ~hi:n
      ~arrays:[ farr "a" n; farr "b" n; iarr "idx" n ] ~scalars:[]
      [ store "b" (v "i") (ld "a" (ld "idx" (v "i"))) ];
    kernel ~name:"init-flag" ~index:"i" ~lo:0 ~hi:n
      ~arrays:[ iarr "flags" n ] ~scalars:[ iscalar ~init:1 "one" ]
      [ store "flags" (v "i") (v "one") ];
  ]

(* ------------------------------------------------------------------ *)
(* 16 simple elementwise loops (traditional loop parallelization).     *)

let elementwise_loops =
  let binmap name e =
    kernel ~name ~index:"i" ~lo:0 ~hi:n
      ~arrays:[ farr "a" n; farr "b" n; farr "c" n ]
      ~scalars:[ fscalar ~init:1.5 "s" ]
      [ store "c" (v "i") e ]
  in
  [
    binmap "ew-add" (ld "a" (v "i") +: ld "b" (v "i"));
    binmap "ew-sub" (ld "a" (v "i") -: ld "b" (v "i"));
    binmap "ew-mul" (ld "a" (v "i") *: ld "b" (v "i"));
    binmap "ew-scale" (ld "a" (v "i") *: v "s");
    binmap "ew-axpy" ((v "s" *: ld "a" (v "i")) +: ld "b" (v "i"));
    binmap "ew-aypx" ((v "s" *: ld "b" (v "i")) +: ld "a" (v "i"));
    binmap "ew-shift" (ld "a" (v "i") +: v "s");
    binmap "ew-diff" (ld "a" (v "i" +: i 1) -: ld "a" (v "i"));
    binmap "ew-avg" ((ld "a" (v "i") +: ld "b" (v "i")) *: f 0.5);
    binmap "ew-min" (min_ (ld "a" (v "i")) (ld "b" (v "i")));
    binmap "ew-max" (max_ (ld "a" (v "i")) (ld "b" (v "i")));
    binmap "ew-neg" (neg (ld "a" (v "i")));
    binmap "ew-abs" (abs_ (ld "a" (v "i")));
    binmap "ew-sqr" (ld "a" (v "i") *: ld "a" (v "i"));
    binmap "ew-recip" (f 1.0 /: (ld "a" (v "i") +: f 1.0));
    kernel ~name:"ew-scatter-scale" ~index:"i" ~lo:0 ~hi:n
      ~arrays:[ farr "a" n; farr "c" n; iarr "idx" n ]
      ~scalars:[ fscalar ~init:2.0 "s" ]
      [ store "c" (ld "idx" (v "i")) (ld "a" (v "i") *: v "s") ];
  ]

(* The diff loop reads a[i+1]: widen the source array. *)
let elementwise_loops =
  List.map
    (fun (k : Kernel.t) ->
      if String.equal k.Kernel.name "ew-diff" then
        Kernel.validate
          { k with
            Kernel.arrays =
              List.map
                (fun (d : Kernel.array_decl) ->
                  if String.equal d.Kernel.a_name "a" then
                    { d with Kernel.a_len = n + 1 }
                  else d)
                k.Kernel.arrays }
      else k)
    elementwise_loops

(* ------------------------------------------------------------------ *)
(* 8 scalar-reduction loops (dot products and friends).                *)

let reduction_loops =
  let red name e =
    kernel ~name ~index:"i" ~lo:0 ~hi:n
      ~arrays:[ farr "a" n; farr "b" n ]
      ~scalars:[ fscalar "acc" ] ~live_out:[ "acc" ]
      [ set "acc" (v "acc" +: e) ]
  in
  [
    red "dot-ab" (ld "a" (v "i") *: ld "b" (v "i"));
    red "dot-aa" (ld "a" (v "i") *: ld "a" (v "i"));
    red "sum-a" (ld "a" (v "i"));
    red "sum-diff" (ld "a" (v "i") -: ld "b" (v "i"));
    red "sum-abs" (abs_ (ld "a" (v "i")));
    kernel ~name:"max-red" ~index:"i" ~lo:0 ~hi:n
      ~arrays:[ farr "a" n ] ~scalars:[ fscalar "acc" ] ~live_out:[ "acc" ]
      [ set "acc" (max_ (v "acc") (ld "a" (v "i"))) ];
    kernel ~name:"min-red" ~index:"i" ~lo:0 ~hi:n
      ~arrays:[ farr "a" n ] ~scalars:[ fscalar ~init:1.0e9 "acc" ]
      ~live_out:[ "acc" ]
      [ set "acc" (min_ (v "acc") (ld "a" (v "i"))) ];
    kernel ~name:"count-pos" ~index:"i" ~lo:0 ~hi:n
      ~arrays:[ farr "a" n ] ~scalars:[ iscalar "acc" ] ~live_out:[ "acc" ]
      [ set "acc" (v "acc" +: (ld "a" (v "i") >: f 1.0)) ];
  ]

(* ------------------------------------------------------------------ *)
(* 1 array reduction (the amg loop: harder to parallelize because the
   reduced elements are selected by an index array).                   *)

let array_reduction_loops =
  [
    kernel ~name:"amg-array-red" ~index:"i" ~lo:0 ~hi:n
      ~arrays:[ farr "y" n; farr "x" n; iarr "idx" n ] ~scalars:[]
      [
        store "y" (ld "idx" (v "i"))
          (ld "y" (ld "idx" (v "i")) +: ld "x" (v "i"));
      ];
  ]

(* ------------------------------------------------------------------ *)
(* 2 conditional-heavy loops with read-after-write condition chains
   and tiny blocks between the conditionals (the excluded umt2k pair). *)

let conditional_loops =
  let cond_chain name =
    kernel ~name ~index:"i" ~lo:0 ~hi:n
      ~arrays:[ farr "a" n; farr "out" n ]
      ~scalars:[ fscalar ~init:0.9 "t"; fscalar ~init:0.2 "st" ]
      ~live_out:[ "st" ]
      [
        set "c1" (v "st" >: v "t");
        if_ (v "c1") [ set "st" (v "st" *: f 0.5) ] [ set "st" (v "st" +: f 0.1) ];
        set "c2" (v "st" >: f 0.5);
        if_ (v "c2") [ set "st" (v "st" -: f 0.01) ] [ set "st" (v "st" +: f 0.02) ];
        set "c3" (v "st" <: f 1.5);
        when_ (v "c3") [ set "st" (v "st" *: f 1.01) ];
        set "c4" (v "st" >: ld "a" (v "i"));
        when_ (v "c4") [ store "out" (v "i") (v "st") ];
      ]
  in
  [ cond_chain "cond-chain-1"; cond_chain "cond-chain-2" ]

(** The 33 excluded loops. *)
let excluded =
  init_loops @ elementwise_loops @ reduction_loops @ array_reduction_loops
  @ conditional_loops

(** All 51 hot loops: the 18 evaluation kernels plus the 33 excluded. *)
let all_hot_loops =
  List.map (fun (e : Registry.entry) -> e.Registry.kernel) Registry.all
  @ excluded
