(** Kernels modeled on the sphot hot loops of Table I.

    sphot is a Monte Carlo photon-transport benchmark ([execute.f]).
    sphot-1 is the tiny source-sampling loop; sphot-2 is the large
    tracking step: distance sampling with log/exp, cross-section gathers,
    scatter/absorb branching (assign-only branches — prime control-flow
    speculation targets), and tally reductions. *)

open Finepar_ir
open Builder

let n = 256
let groups = 32

let workload ?(seed = 17) (k : Kernel.t) =
  let r = Workload.rng seed in
  List.map
    (fun (d : Kernel.array_decl) ->
      match (d.Kernel.a_name, d.Kernel.a_ty) with
      | "grp", _ -> (d.Kernel.a_name, Workload.iarray_small r d.Kernel.a_len ~bound:groups)
      | _, Types.I64 ->
        (d.Kernel.a_name, Workload.iarray_indices r d.Kernel.a_len ~bound:n)
      | _, Types.F64 -> (d.Kernel.a_name, Workload.farray r d.Kernel.a_len))
    k.Kernel.arrays

(** sphot-1: source-particle initialization (execute.f:88, 0.6%).  A tiny
    body with two independent chains — little to distribute, yet the paper
    still reports 2.26 on 4 cores. *)
let sphot_1 =
  kernel ~name:"sphot-1" ~index:"i" ~lo:0 ~hi:n
    ~arrays:[ farr "rn1" n; farr "rn2" n; farr "ex_out" n; farr "ey_out" n ]
    ~scalars:[ fscalar ~init:6.2831853 "twopi" ]
    [
      set "mu0" ((ld "rn1" (v "i") *: f 2.0) -: f 1.0);
      set "sq" (sqrt_ (abs_ (f 1.0 -: (v "mu0" *: v "mu0")) +: f 1.0e-12));
      set "phi0" (ld "rn2" (v "i") *: v "twopi");
      (* Hemisphere selection for the emitted direction: pure value
         selection on the polar sign. *)
      if_ (v "mu0" >: f 0.0)
        [ set "dirw" (v "sq") ]
        [ set "dirw" (f 0.0 -: v "sq") ];
      store "ex_out" (v "i") (v "dirw" *: v "phi0");
      store "ey_out" (v "i") ((v "mu0" *: (v "phi0" +: f 0.5)) +: (v "dirw" *: f 0.01));
    ]

(** sphot-2: the particle tracking step (execute.f:300, 37.5%).  The
    biggest kernel: sample a flight distance (log), gather group cross
    sections, advance the position, branch on collision type with
    assign-only arms, and accumulate three tallies. *)
let sphot_2 =
  kernel ~name:"sphot-2" ~index:"i" ~lo:0 ~hi:n
    ~arrays:
      [
        iarr "grp" n;
        farr "sig_t" groups; farr "sig_s" groups; farr "sig_a" groups;
        farr "rn1" n; farr "rn2" n; farr "rn3" n;
        farr "px" n; farr "pw" n;
        farr "px_out" n; farr "pw_out" n; farr "esc_out" n;
      ]
    ~scalars:
      [
        fscalar "tal_scat"; fscalar "tal_abs"; fscalar "tal_esc";
        fscalar ~init:10.0 "slab"; fscalar ~init:0.3 "wcut";
      ]
    ~live_out:[ "tal_scat"; "tal_abs"; "tal_esc" ]
    [
      set "g" (ld "grp" (v "i"));
      set "st" (ld "sig_t" (v "g") +: f 0.05);
      set "ss" (ld "sig_s" (v "g"));
      set "sa" (ld "sig_a" (v "g"));
      set "mfp" (f 1.0 /: v "st");
      set "dist" (neg (log_ (ld "rn1" (v "i") +: f 1.0e-9)) *: v "mfp");
      set "xnew" (ld "px" (v "i") +: v "dist");
      set "escaped" (v "xnew" >: v "slab");
      set "pscat" (v "ss" /: (v "ss" +: v "sa"));
      set "scatters" (ld "rn2" (v "i") <: v "pscat");
      (* The heavy collision arithmetic is pure, so it is hoisted out of
         the branch; the arms only commit one of the two outcomes
         (assign-only — control-flow speculation turns them into
         selects). *)
      set "w_scat" (ld "pw" (v "i") *: (f 1.0 -: (v "sa" *: v "mfp")));
      set "x_scat" (v "xnew" *: ld "rn3" (v "i"));
      set "w_abs" (ld "pw" (v "i") *: exp_ (neg (v "sa" *: v "dist")));
      if_ (v "scatters")
        [ set "wnew" (v "w_scat"); set "xres" (v "x_scat") ]
        [ set "wnew" (v "w_abs"); set "xres" (v "xnew") ];
      set "survives" (v "wnew" >: v "wcut");
      if_ (v "escaped")
        [ set "tal_esc" (v "tal_esc" +: ld "pw" (v "i")) ]
        [
          when_ (v "scatters") [ set "tal_scat" (v "tal_scat" +: v "wnew") ];
          when_ (not_ (v "scatters"))
            [ set "tal_abs" (v "tal_abs" +: (ld "pw" (v "i") -: v "wnew")) ];
        ];
      set "wfinal" (select (v "survives") (v "wnew") (f 0.0));
      store "px_out" (v "i") (v "xres");
      store "pw_out" (v "i") (v "wfinal");
      store "esc_out" (v "i") (select (v "escaped") (f 1.0) (f 0.0));
    ]

let all = [ sphot_1; sphot_2 ]
