(** Kernels modeled on the lammps hot loops of Table I.

    lammps is the LAMMPS molecular-dynamics code; the hot loops live in
    the EAM pair potential ([pair_eam.cpp, PairEAM::compute]) and in
    neighbor-list construction ([neigh_half_bin.cpp]).  The real code is
    not redistributable, so each kernel mirrors the published structure of
    its loop: the EAM loops gather neighbor coordinates, evaluate cubic
    splines from coefficient tables, and scatter-accumulate densities and
    forces; the neighbor loops compute squared distances and fill lists
    under cutoff conditionals. *)

open Finepar_ir
open Builder

let n = 256  (* iterations = neighbor pairs / atoms per call *)
let tab = 64 (* spline table size *)

(* Cubic spline evaluation from four coefficient arrays:
   ((c3*p + c2)*p + c1)*p + c0, the kernel of EAM interpolation. *)
let spline prefix m p =
  ((ld (prefix ^ "3") m *: p +: ld (prefix ^ "2") m) *: p
  +: ld (prefix ^ "1") m)
    *: p
  +: ld (prefix ^ "0") m

let spline_arrays prefix =
  [ farr (prefix ^ "0") tab; farr (prefix ^ "1") tab;
    farr (prefix ^ "2") tab; farr (prefix ^ "3") tab ]

(* Distance computation from gathered neighbor coordinates. *)
let pair_distance =
  [
    set "j" (ld "jlist" (v "i"));
    set "dx" (ld "xi" (v "i") -: ld "x" (v "j"));
    set "dy" (ld "yi" (v "i") -: ld "y" (v "j"));
    set "dz" (ld "zi" (v "i") -: ld "z" (v "j"));
    set "r2" ((v "dx" *: v "dx") +: (v "dy" *: v "dy") +: (v "dz" *: v "dz"));
  ]

let coord_arrays =
  [
    iarr "jlist" n; farr "xi" n; farr "yi" n; farr "zi" n;
    farr "x" n; farr "y" n; farr "z" n;
  ]

(* Table index from distance: p = r2 * rdr, m = clamp(int(p)). *)
let table_index ~m ~p ~frac r2 =
  [
    set p (r2 *: v "rdr");
    set m (max_ (min_ (to_i (v p)) (i (tab - 1))) (i 0));
    set frac (v p -: to_f (v m));
  ]

let workload ?(seed = 7) (k : Kernel.t) =
  let r = Workload.rng seed in
  List.map
    (fun (d : Kernel.array_decl) ->
      match (d.Kernel.a_name, d.Kernel.a_ty) with
      | "jlist", _ | "cand", _ ->
        (d.Kernel.a_name, Workload.iarray_indices r d.Kernel.a_len ~bound:n)
      | _, Types.I64 ->
        (d.Kernel.a_name, Workload.iarray_indices r d.Kernel.a_len ~bound:n)
      | _, Types.F64 -> (d.Kernel.a_name, Workload.farray r d.Kernel.a_len))
    k.Kernel.arrays

(** lammps-1: EAM electron-density accumulation (pair_eam.cpp:182, 30.0%).
    Per neighbor pair: distance, two spline evaluations (density of j at i
    and of i at j), accumulate rho[i] (affine) and scatter rho[j]. *)
let lammps_1 =
  kernel ~name:"lammps-1" ~index:"i" ~lo:0 ~hi:n
    ~arrays:
      (coord_arrays
      @ spline_arrays "rhor"
      @ spline_arrays "rhoj"
      @ [ farr "rho_i" n; farr "rho_j" n ])
    ~scalars:[ fscalar ~init:10.0 "rdr" ]
    (pair_distance
    @ table_index ~m:"m" ~p:"p" ~frac:"fr" (v "r2")
    @ [
        set "dens_ij" (spline "rhor" (v "m") (v "fr"));
        set "dens_ji" (spline "rhoj" (v "m") (v "fr"));
        (* Cutoff smoothing: select between the spline value and a tail
           approximation (pure value selection). *)
        if_ (v "r2" <: f 6.0)
          [ set "dij" (v "dens_ij") ]
          [ set "dij" (v "dens_ij" *: (f 12.0 -: v "r2") *: f 0.1) ];
        store "rho_i" (v "i") (ld "rho_i" (v "i") +: v "dij");
        store "rho_j" (v "j") (ld "rho_j" (v "j") +: v "dens_ji");
      ])

(** lammps-2: embedding energy and its derivative (pair_eam.cpp:214, 0.3%).
    Per atom: two independent spline evaluations over the local density,
    plus an energy reduction — chains are almost fully independent. *)
let lammps_2 =
  kernel ~name:"lammps-2" ~index:"i" ~lo:0 ~hi:n
    ~arrays:
      (spline_arrays "frho" @ spline_arrays "fprh" @ spline_arrays "scal"
      @ [ farr "rho" n; farr "fp" n; farr "emb" n; farr "esc" n ])
    ~scalars:[ fscalar ~init:8.0 "rdrho"; fscalar "esum" ]
    ~live_out:[ "esum" ]
    ([
       set "p" (ld "rho" (v "i") *: v "rdrho");
       set "m" (max_ (min_ (to_i (v "p")) (i (tab - 1))) (i 0));
       set "fr" (v "p" -: to_f (v "m"));
       set "fpv" (spline "fprh" (v "m") (v "fr"));
       set "phi" (spline "frho" (v "m") (v "fr"));
       set "scl" (spline "scal" (v "m") (v "fr"));
       set "scaled" (v "phi" *: ld "rho" (v "i"));
       store "fp" (v "i") (v "fpv");
       store "emb" (v "i") (v "phi");
       store "esc" (v "i") (v "scl" *: v "scl");
       set "esum" (v "esum" +: v "scaled");
     ])

(** lammps-3: EAM force computation (pair_eam.cpp:247, 49.5%).  The
    heaviest loop: distance, three spline evaluations (pair potential and
    the two density derivatives), force assembly, scatter updates of the
    three force components of atom j, accumulation for atom i, and two
    virial reductions. *)
let lammps_3 =
  kernel ~name:"lammps-3" ~index:"i" ~lo:0 ~hi:n
    ~arrays:
      (coord_arrays
      @ spline_arrays "z2r" @ spline_arrays "rhop" @ spline_arrays "phip"
      @ [
          farr "fpi" n; farr "fpj" n;
          farr "fxi" n; farr "fyi" n; farr "fzi" n;
          farr "fxj" n; farr "fyj" n; farr "fzj" n;
        ])
    ~scalars:[ fscalar ~init:10.0 "rdr"; fscalar "virial"; fscalar "epair" ]
    ~live_out:[ "virial"; "epair" ]
    (pair_distance
    @ [ set "r" (sqrt_ (v "r2")) ]
    @ table_index ~m:"m" ~p:"p" ~frac:"fr" (v "r")
    @ [
        set "z2" (spline "z2r" (v "m") (v "fr"));
        set "rhoip" (spline "rhop" (v "m") (v "fr"));
        set "phipv" (spline "phip" (v "m") (v "fr"));
        set "recip" (f 1.0 /: v "r");
        set "phi" (v "z2" *: v "recip");
        set "psip"
          ((ld "fpi" (v "i") *: v "rhoip")
          +: (ld "fpj" (v "j") *: v "rhoip")
          +: v "phipv");
        set "fraw" (neg (v "psip") *: v "recip");
        (* Force capping near the core radius: pure value selection. *)
        if_ (v "r2" >: f 0.04)
          [ set "fpair" (v "fraw") ]
          [ set "fpair" (v "fraw" *: v "r2" *: f 25.0) ];
        set "fx" (v "dx" *: v "fpair");
        set "fy" (v "dy" *: v "fpair");
        set "fz" (v "dz" *: v "fpair");
        store "fxi" (v "i") (ld "fxi" (v "i") +: v "fx");
        store "fyi" (v "i") (ld "fyi" (v "i") +: v "fy");
        store "fzi" (v "i") (ld "fzi" (v "i") +: v "fz");
        store "fxj" (v "j") (ld "fxj" (v "j") -: v "fx");
        store "fyj" (v "j") (ld "fyj" (v "j") -: v "fy");
        store "fzj" (v "j") (ld "fzj" (v "j") -: v "fz");
        set "virial"
          (v "virial"
          +: ((v "dx" *: v "fx") +: (v "dy" *: v "fy") +: (v "dz" *: v "fz")));
        set "epair" (v "epair" +: v "phi");
      ])

(** lammps-4: half-bin neighbor construction (neigh_half_bin.cpp:172,
    3.6%).  Distance test against two cutoffs with conditional stores of
    the accepted pair's data; the exclusion bitmask adds integer work. *)
let lammps_4 =
  kernel ~name:"lammps-4" ~index:"i" ~lo:0 ~hi:n
    ~arrays:
      (coord_arrays
      @ [
          iarr "mask" n; iarr "molecule" n;
          farr "cutsq_t" n; farr "dist" n; farr "which" n; farr "inner" n;
        ])
    ~scalars:
      [
        fscalar ~init:3.2 "cutsq"; fscalar ~init:1.1 "innersq";
        iscalar ~init:5 "excl_bits";
      ]
    (pair_distance
    @ [
        set "type_cut" (ld "cutsq_t" (v "j"));
        set "excl"
          (Expr.Binop (Types.And, ld "mask" (v "j"), v "excl_bits"));
        set "same_mol" (ld "molecule" (v "j") ==: ld "molecule" (v "i"));
        set "keep"
          ((v "r2" <: v "cutsq")
          &&: (v "r2" <: v "type_cut")
          &&: not_ (v "same_mol" &&: (v "excl" >: i 0)));
        when_ (v "keep")
          [
            set "w" (v "r2" *: ld "cutsq_t" (v "i") +: f 0.5);
            store "dist" (v "i") (v "r2");
            store "which" (v "i") (v "w");
            when_ (v "r2" <: v "innersq")
              [ store "inner" (v "i") (v "w" *: f 0.25) ];
          ];
      ])

(** lammps-5: the second half-bin loop (neigh_half_bin.cpp:199, 3.6%).
    Mostly independent per-pair computations stored to separate arrays —
    the most parallel of the lammps loops. *)
let lammps_5 =
  kernel ~name:"lammps-5" ~index:"i" ~lo:0 ~hi:n
    ~arrays:
      (coord_arrays
      @ [
          farr "d_out" n; farr "rinv_out" n; farr "ex" n; farr "ey" n;
          farr "ez" n; farr "wt" n;
        ])
    ~scalars:[ fscalar ~init:0.05 "skin" ]
    (pair_distance
    @ [
        set "r" (sqrt_ (v "r2" +: v "skin"));
        set "w" (f 1.0 /: (v "r2" +: f 1.0));
        (* Independent per-component polynomial weights (a truncated
           series instead of a shared 1/r chain keeps the components
           independent — which is what makes this loop so parallel). *)
        set "px2" (v "dx" *: v "dx");
        set "py2" (v "dy" *: v "dy");
        set "pz2" (v "dz" *: v "dz");
        set "exv" (v "dx" *: (f 1.0 -: (v "px2" *: f 0.5) +: (v "px2" *: v "px2" *: f 0.375)));
        set "eyv" (v "dy" *: (f 1.0 -: (v "py2" *: f 0.5) +: (v "py2" *: v "py2" *: f 0.375)));
        set "ezv" (v "dz" *: (f 1.0 -: (v "pz2" *: f 0.5) +: (v "pz2" *: v "pz2" *: f 0.375)));
        store "d_out" (v "i") (v "r");
        store "rinv_out" (v "i") (v "w" *: v "r");
        store "ex" (v "i") (v "exv");
        store "ey" (v "i") (v "eyv");
        store "ez" (v "i") (v "ezv");
        store "wt" (v "i") (v "w");
      ])

let all = [ lammps_1; lammps_2; lammps_3; lammps_4; lammps_5 ]
