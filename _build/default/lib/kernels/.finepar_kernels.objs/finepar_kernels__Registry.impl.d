lib/kernels/registry.ml: Eval Finepar_ir Irs Kernel Lammps List Sphot String Umt2k
