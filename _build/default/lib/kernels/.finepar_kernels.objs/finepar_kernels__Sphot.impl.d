lib/kernels/sphot.ml: Builder Finepar_ir Kernel List Types Workload
