lib/kernels/registry.mli: Finepar_ir String
