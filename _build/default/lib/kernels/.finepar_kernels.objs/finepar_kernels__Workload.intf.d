lib/kernels/workload.mli: Finepar_ir
