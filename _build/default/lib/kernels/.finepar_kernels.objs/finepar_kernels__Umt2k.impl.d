lib/kernels/umt2k.ml: Builder Finepar_ir Kernel List Types Workload
