lib/kernels/corpus.ml: Builder Finepar_ir Kernel List Registry String
