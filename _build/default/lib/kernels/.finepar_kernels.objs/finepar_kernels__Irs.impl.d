lib/kernels/irs.ml: Builder Finepar_ir Kernel List Workload
