lib/kernels/workload.ml: Array Finepar_ir Int64 Kernel List Types
