lib/kernels/lammps.ml: Builder Expr Finepar_ir Kernel List Types Workload
