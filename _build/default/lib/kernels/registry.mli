(** The 18 evaluation kernels (Table I), with the paper's published
    per-kernel numbers for side-by-side reporting in the benchmark
    harness and EXPERIMENTS.md. *)

type paper_row = {
  p_fibers : int;
  p_deps : int;
  p_balance : float;
  p_com_ops : int;
  p_queues : int;
  p_speedup4 : float;
}
type entry = {
  kernel : Finepar_ir.Kernel.t;
  app : string;
  location : string;
  pct_time : float;
  paper : paper_row;
  workload : Finepar_ir.Eval.workload;
}
val entry :
  app:string ->
  location:string ->
  pct:float ->
  paper:paper_row ->
  workload:(Finepar_ir.Kernel.t -> Finepar_ir.Eval.workload) ->
  Finepar_ir.Kernel.t -> entry
val row : int -> int -> float -> int -> int -> float -> paper_row
val all : entry list
val find : String.t -> entry option
val names : string list
val apps : string list
val by_app : String.t -> entry list
val paper_table2 : (string * float * float) list
val paper_fig12_avg : (int * float) list
val paper_fig13_avg : (int * float) list
val paper_fig14 : float * float
