(** The 18 evaluation kernels (Table I), with the paper's published
    per-kernel numbers for side-by-side reporting in the benchmark
    harness and EXPERIMENTS.md. *)

open Finepar_ir

(** Paper values from Table III (4-core configuration). *)
type paper_row = {
  p_fibers : int;
  p_deps : int;
  p_balance : float;
  p_com_ops : int;
  p_queues : int;
  p_speedup4 : float;
}

type entry = {
  kernel : Kernel.t;
  app : string;
  location : string;  (** file, function, line from Table I *)
  pct_time : float;  (** % of application time, Table I *)
  paper : paper_row;
  workload : Eval.workload;
}

let entry ~app ~location ~pct ~paper ~workload kernel =
  { kernel; app; location; pct_time = pct; paper; workload = workload kernel }

let row f d b c q s =
  {
    p_fibers = f;
    p_deps = d;
    p_balance = b;
    p_com_ops = c;
    p_queues = q;
    p_speedup4 = s;
  }

let all : entry list =
  [
    entry ~app:"lammps" ~location:"pair_eam.cpp, PairEAM::compute, 182"
      ~pct:30.0 ~paper:(row 63 37 1.49 9 3 1.94) ~workload:Lammps.workload
      Lammps.lammps_1;
    entry ~app:"lammps" ~location:"pair_eam.cpp, PairEAM::compute, 214"
      ~pct:0.3 ~paper:(row 60 6 1.89 6 3 2.07) ~workload:Lammps.workload
      Lammps.lammps_2;
    entry ~app:"lammps" ~location:"pair_eam.cpp, PairEAM::compute, 247"
      ~pct:49.5 ~paper:(row 123 96 1.49 23 6 1.67) ~workload:Lammps.workload
      Lammps.lammps_3;
    entry ~app:"lammps"
      ~location:"neigh_half_bin.cpp, Neighbor::half_bin_newton, 172" ~pct:3.6
      ~paper:(row 105 67 1.68 34 6 1.56) ~workload:Lammps.workload
      Lammps.lammps_4;
    entry ~app:"lammps"
      ~location:"neigh_half_bin.cpp, Neighbor::half_bin_newton, 199" ~pct:3.6
      ~paper:(row 87 14 1.45 18 6 2.80) ~workload:Lammps.workload
      Lammps.lammps_5;
    entry ~app:"irs" ~location:"rmatmult3.c, rmatmult3, 75" ~pct:55.6
      ~paper:(row 208 54 1.69 3 3 2.29) ~workload:Irs.workload Irs.irs_1;
    entry ~app:"irs" ~location:"MatrixSolve.c, MatrixSolveCG, 287" ~pct:5.1
      ~paper:(row 47 6 2.54 8 6 1.33) ~workload:Irs.workload Irs.irs_2;
    entry ~app:"irs" ~location:"MatrixSolve.c, MatrixSolveCG, 250" ~pct:2.5
      ~paper:(row 30 3 1.88 2 2 2.06) ~workload:Irs.workload Irs.irs_3;
    entry ~app:"irs" ~location:"DiffCoeff.c, DiffCoeff_3D, 191" ~pct:0.6
      ~paper:(row 110 108 1.65 16 3 2.98) ~workload:Irs.workload Irs.irs_4;
    entry ~app:"irs" ~location:"DiffCoeff.c, DiffCoeff_3D, 317" ~pct:1.5
      ~paper:(row 390 698 1.84 60 3 2.99) ~workload:Irs.workload Irs.irs_5;
    entry ~app:"umt2k" ~location:"snswp3d.f90, snswp3d, 96" ~pct:5.5
      ~paper:(row 11 6 1.91 2 2 2.62) ~workload:Umt2k.workload Umt2k.umt2k_1;
    entry ~app:"umt2k" ~location:"snswp3d.f90, snswp3d, 117" ~pct:8.0
      ~paper:(row 33 2 87.50 3 2 1.01) ~workload:Umt2k.workload Umt2k.umt2k_2;
    entry ~app:"umt2k" ~location:"snswp3d.f90, snswp3d, 145" ~pct:5.2
      ~paper:(row 31 4 55.00 5 3 1.25) ~workload:Umt2k.workload Umt2k.umt2k_3;
    entry ~app:"umt2k" ~location:"snswp3d.f90, snswp3d, 158" ~pct:22.6
      ~paper:(row 35 62 1.67 10 7 2.79) ~workload:Umt2k.workload Umt2k.umt2k_4;
    entry ~app:"umt2k" ~location:"snswp3d.f90, snswp3d, 178" ~pct:1.0
      ~paper:(row 9 28 1.30 6 6 2.03) ~workload:Umt2k.workload Umt2k.umt2k_5;
    entry ~app:"umt2k" ~location:"snswp3d.f90, snswp3d, 208" ~pct:5.7
      ~paper:(row 38 1 1.57 6 6 0.90) ~workload:Umt2k.workload Umt2k.umt2k_6;
    entry ~app:"sphot" ~location:"execute.f, execute, 88" ~pct:0.6
      ~paper:(row 5 2 2.36 2 2 2.26) ~workload:Sphot.workload Sphot.sphot_1;
    entry ~app:"sphot" ~location:"execute.f, execute, 300" ~pct:37.5
      ~paper:(row 478 329 1.71 36 8 2.60) ~workload:Sphot.workload
      Sphot.sphot_2;
  ]

let find name =
  List.find_opt (fun e -> String.equal e.kernel.Kernel.name name) all

let names = List.map (fun e -> e.kernel.Kernel.name) all

let apps = [ "lammps"; "irs"; "umt2k"; "sphot" ]

let by_app app = List.filter (fun e -> String.equal e.app app) all

(** Paper-reported whole-application expected speedups (Table II). *)
let paper_table2 =
  [
    ("lammps", 1.05, 1.70);
    ("irs", 1.24, 1.79);
    ("umt2k", 1.16, 1.51);
    ("sphot", 1.25, 1.92);
    ("average", 1.18, 1.73);
  ]

(** Paper-reported averages: (cores, mean speedup) from Fig. 12, plus the
    latency sweep means from Fig. 13 and the speculation mean from
    Fig. 14. *)
let paper_fig12_avg = [ (2, 1.32); (4, 2.05) ]
let paper_fig13_avg = [ (5, 2.05); (20, 1.85); (50, 1.36); (100, 1.0) ]
let paper_fig14 = (2.05, 2.33)
