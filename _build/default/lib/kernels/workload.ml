(** Deterministic synthetic workload generation.

    The paper extracts each hot loop "into a separate kernel program,
    together with the necessary initialization code from the main
    application" (Section V).  Our initialization code is a seeded
    splitmix64 generator, so every run of every experiment sees identical
    data. *)

open Finepar_ir

type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int (0x9E3779B9 + (seed * 0x85EBCA6B)) }

let next_int64 r =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform float in [lo, hi). *)
let float_in r lo hi =
  let u =
    Int64.to_float (Int64.shift_right_logical (next_int64 r) 11)
    /. 9007199254740992.0
  in
  lo +. (u *. (hi -. lo))

(** Uniform int in [0, bound). *)
let int_below r bound =
  let u = Int64.to_int (Int64.shift_right_logical (next_int64 r) 2) in
  u mod bound

let farray ?(lo = 0.1) ?(hi = 2.0) r len =
  Array.init len (fun _ -> Types.VFloat (float_in r lo hi))

(** An index array whose entries are valid indices into an array of length
    [bound] — models gather/scatter neighbor lists. *)
let iarray_indices r len ~bound =
  Array.init len (fun _ -> Types.VInt (int_below r bound))

(** Monotonically increasing offsets (e.g. CSR-style row pointers). *)
let iarray_ascending r len ~max_step =
  let acc = ref 0 in
  Array.init len (fun _ ->
      acc := !acc + int_below r (max_step + 1);
      Types.VInt !acc)

(** Integers in [0, bound), e.g. material ids or bin ids. *)
let iarray_small r len ~bound =
  Array.init len (fun _ -> Types.VInt (int_below r bound))

(** Default workload for a kernel: every float array gets values in
    [0.1, 2.0); every int array gets valid indices into the smallest float
    array (safe for gathers).  Kernels with specific needs build their own
    workloads and override entries. *)
let default ?(seed = 42) (k : Kernel.t) =
  let r = rng seed in
  let min_len =
    List.fold_left (fun acc (d : Kernel.array_decl) -> min acc d.Kernel.a_len)
      max_int k.Kernel.arrays
  in
  List.map
    (fun (d : Kernel.array_decl) ->
      match d.Kernel.a_ty with
      | Types.F64 -> (d.Kernel.a_name, farray r d.Kernel.a_len)
      | Types.I64 ->
        (d.Kernel.a_name, iarray_indices r d.Kernel.a_len ~bound:min_len))
    k.Kernel.arrays
