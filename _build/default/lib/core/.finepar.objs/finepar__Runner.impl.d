lib/core/runner.ml: Array Compiler Config Eval Finepar_analysis Finepar_codegen Finepar_ir Finepar_machine Fmt Kernel List Sim Stmt
