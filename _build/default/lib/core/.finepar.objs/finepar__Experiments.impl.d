lib/core/experiments.ml: Array Compiler Config Corpus Finepar_characterize Finepar_ir Finepar_kernels Finepar_machine Float Fun Isa Kernel List Option Program Registry Runner Sim Stmt String Types
