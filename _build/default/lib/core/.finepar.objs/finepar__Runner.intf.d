lib/core/runner.mli: Compiler Finepar_analysis Finepar_ir Finepar_machine
