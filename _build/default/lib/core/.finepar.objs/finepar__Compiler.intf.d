lib/core/compiler.mli: Finepar_analysis Finepar_codegen Finepar_ir Finepar_machine Finepar_partition Format
