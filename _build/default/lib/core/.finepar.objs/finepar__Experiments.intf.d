lib/core/experiments.mli: Compiler Finepar_characterize Finepar_kernels Finepar_machine Runner
