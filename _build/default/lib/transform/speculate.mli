(** Control-flow speculation (Section III-H).

    A deliberately limited, rollback-free form of speculation: if-then-else
    statements whose branches are independent and side-effect free are
    executed ahead of time, before the condition value is known, and the
    results are committed with selects.  Because there is never a rollback,
    the compiler can still statically pair every enqueue with a dequeue.

    Eligibility for an [If (c, then_, else_)]:
    - both branches contain only scalar assignments (no stores, no nested
      conditionals), and
    - the sets of scalars assigned in the two branches can be anything;
      each assigned scalar commits through a select (variables assigned in
      only one branch select between the speculative value and the
      original one).

    The transformation renames branch-local definitions, hoists both
    branches' computations above the conditional, and replaces the
    conditional by one select per assigned variable — the pattern of the
    paper's Fig. 10 (compute then-value and else-value concurrently, commit
    with the condition). *)

module SS : Set.S with type elt = String.t and type t = Set.Make(String).t
val eligible_branches :
  defined:SS.t -> Finepar_ir.Stmt.t list -> Finepar_ir.Stmt.t list -> bool
val rename_branch :
  suffix:string ->
  Finepar_ir.Stmt.t list ->
  Finepar_ir.Stmt.t list * (string, string) Hashtbl.t
val apply : Finepar_ir.Kernel.t -> Finepar_ir.Kernel.t * int
