(** Control-flow speculation (Section III-H).

    A deliberately limited, rollback-free form of speculation: if-then-else
    statements whose branches are independent and side-effect free are
    executed ahead of time, before the condition value is known, and the
    results are committed with selects.  Because there is never a rollback,
    the compiler can still statically pair every enqueue with a dequeue.

    Eligibility for an [If (c, then_, else_)]:
    - both branches contain only scalar assignments (no stores, no nested
      conditionals), and
    - the sets of scalars assigned in the two branches can be anything;
      each assigned scalar commits through a select (variables assigned in
      only one branch select between the speculative value and the
      original one).

    The transformation renames branch-local definitions, hoists both
    branches' computations above the conditional, and replaces the
    conditional by one select per assigned variable — the pattern of the
    paper's Fig. 10 (compute then-value and else-value concurrently, commit
    with the condition). *)

open Finepar_ir
module SS = Set.Make (String)

let eligible_branches ~defined then_ else_ =
  let assigns_only stmts =
    List.for_all
      (function Stmt.Assign _ -> true | Stmt.Store _ | Stmt.If _ -> false)
      stmts
  in
  (* Variables assigned anywhere in either arm. *)
  let assigned = SS.union (Stmt.vars_written then_) (Stmt.vars_written else_) in
  (* An arm must not read the pre-branch value of a variable the
     conditional assigns (e.g. accumulator updates "phi = phi + x"):
     speculating those turns a sometimes-executed reduction into an
     always-executed serial chain, which is exactly what the paper's
     rollback-free speculation avoids by targeting pure value selection. *)
  let no_self_read stmts =
    let defined = ref SS.empty in
    List.for_all
      (fun s ->
        match s with
        | Stmt.Assign (v, e) ->
          let reads = Expr.vars e in
          let bad =
            SS.exists
              (fun r -> SS.mem r assigned && not (SS.mem r !defined))
              reads
          in
          defined := SS.add v !defined;
          not bad
        | Stmt.Store _ | Stmt.If _ -> false)
      stmts
  in
  (* A variable assigned in only one arm commits as
     [select (c, new, old)]; the [old] value must exist, i.e. the
     variable must be assigned in both arms or already have a definite
     value (declared scalar or unconditional earlier definition). *)
  let one_sided_defined =
    let both =
      SS.inter (Stmt.vars_written then_) (Stmt.vars_written else_)
    in
    SS.for_all (fun v -> SS.mem v both || SS.mem v defined) assigned
  in
  assigns_only then_ && assigns_only else_
  && (then_ <> [] || else_ <> [])
  && no_self_read then_ && no_self_read else_ && one_sided_defined

(** Rename branch-local definitions with [suffix]; reads of a variable
    refer to the renamed version once it has been (re)defined in the same
    branch.  Returns the rewritten statements and the mapping from original
    assigned variables to their renamed final names. *)
let rename_branch ~suffix stmts =
  let renamed : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let map v = Option.map (fun n -> Expr.Var n) (Hashtbl.find_opt renamed v) in
  let out =
    List.map
      (fun s ->
        match s with
        | Stmt.Assign (v, e) ->
          let e' = Expr.subst map e in
          let v' = v ^ suffix in
          Hashtbl.replace renamed v v';
          Stmt.Assign (v', e')
        | Stmt.Store _ | Stmt.If _ -> assert false)
      stmts
  in
  (out, renamed)

(** Apply speculation to every eligible conditional in a kernel body.
    Returns the transformed kernel and the number of conditionals
    converted. *)
let apply (k : Kernel.t) =
  let count = ref 0 in
  let fresh_id = ref 0 in
  (* Scalars with a definite value at any program point: declared scalars
     plus targets of unconditional assignments seen so far. *)
  let defined =
    ref
      (List.fold_left
         (fun acc (d : Kernel.scalar_decl) -> SS.add d.Kernel.s_name acc)
         SS.empty k.Kernel.scalars)
  in
  let rec walk ~unconditional s =
    match s with
    | Stmt.Assign (v, _) ->
      if unconditional then defined := SS.add v !defined;
      [ s ]
    | Stmt.Store _ -> [ s ]
    | Stmt.If (c, then_, else_)
      when eligible_branches ~defined:!defined then_ else_ ->
      incr count;
      incr fresh_id;
      let id = !fresh_id in
      let cnd = Printf.sprintf "%%spec_c%d" id in
      let then', tmap = rename_branch ~suffix:(Printf.sprintf "%%st%d" id) then_ in
      let else', emap = rename_branch ~suffix:(Printf.sprintf "%%se%d" id) else_ in
      let assigned =
        SS.union
          (Hashtbl.fold (fun v _ acc -> SS.add v acc) tmap SS.empty)
          (Hashtbl.fold (fun v _ acc -> SS.add v acc) emap SS.empty)
      in
      let commits =
        List.map
          (fun v ->
            let tv =
              match Hashtbl.find_opt tmap v with
              | Some n -> Expr.Var n
              | None -> Expr.Var v
            and ev =
              match Hashtbl.find_opt emap v with
              | Some n -> Expr.Var n
              | None -> Expr.Var v
            in
            Stmt.Assign (v, Expr.Select (Expr.Var cnd, tv, ev)))
          (SS.elements assigned)
      in
      if unconditional then
        defined := SS.union assigned !defined;
      (Stmt.Assign (cnd, c) :: then') @ else' @ commits
    | Stmt.If (c, then_, else_) ->
      [
        Stmt.If
          ( c,
            List.concat_map (walk ~unconditional:false) then_,
            List.concat_map (walk ~unconditional:false) else_ );
      ]
  in
  let body = List.concat_map (walk ~unconditional:true) k.Kernel.body in
  ({ k with Kernel.body }, !count)
