(** Communication insertion (Section III-D).

    For every data or control dependence edge whose endpoints were
    partitioned onto different cores, a value transfer is created: one
    enqueue after the producing fiber, one dequeue before the first
    consuming fiber on each consuming core.

    Anchors are positions in the single global fiber schedule, which keeps
    the enqueue and dequeue sequences of every queue mutually consistent.
    The code generator finalizes dequeue placement per consuming core: it
    orders all dequeues by enqueue anchor and hoists each so that none is
    delayed past another (suffix-min of consumer anchors), which preserves
    per-queue FIFO order and guarantees a transferred predicate value is
    dequeued before any dequeue or statement guarded by it. *)

type transfer = {
  var : string;
  ty : Finepar_ir.Types.ty;
  src_core : int;
  dst_core : int;
  preds : Finepar_ir.Region.pred list;
  enq_anchor : int;
  deq_anchor : int;
  seq : int;
}
type t = {
  transfers : transfer list;
  com_ops : int;
  pairs_used : (int * int) list;
  warnings : string list;
}
val compute :
  region:Finepar_ir.Region.t ->
  deps:Finepar_analysis.Deps.t ->
  cluster_of:int array -> order:int list -> queue_len:int -> t
