lib/transform/comm.mli: Finepar_analysis Finepar_ir
