lib/transform/speculate.ml: Expr Finepar_ir Hashtbl Kernel List Option Printf Set Stmt String
