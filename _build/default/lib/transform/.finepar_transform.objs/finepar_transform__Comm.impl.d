lib/transform/comm.ml: Array Cost Deps Expr Finepar_analysis Finepar_ir Fmt Hashtbl List Option Region Types
