lib/transform/speculate.mli: Finepar_ir Hashtbl Set String
