(** Dependence analysis over a (fiber-split) region.

    Produces the edges of the code graph (Section III-B: "Edges between
    nodes represent data and control dependences ... determined from
    use-def analysis, aliasing information, and dependence vectors") plus
    the set of must-merge constraints that keep the generated code free of
    cross-core memory-carried and loop-carried traffic:

    - multiply-defined scalars are owned by a single core (all defs and
      uses co-located);
    - loop-carried scalar reads are co-located with the defs they race
      with;
    - may-aliasing memory accesses to the same array are co-located and
      ordered.

    These constraints are what lets the compiler statically guarantee that
    every enqueue is matched by a dequeue (Section III-I). *)

open Finepar_ir
module SS = Set.Make (String)
module SM = Map.Make (String)

type edge_kind =
  | Data of string  (** scalar value flows src -> dst *)
  | Control of string  (** dst is predicated on a cnd computed at src *)
  | Anti of string  (** dst overwrites a scalar that src still reads *)
  | Mem of string  (** ordering between two accesses of the same array *)

type edge = { src : int; dst : int; kind : edge_kind }

let pp_edge_kind ppf = function
  | Data v -> Fmt.pf ppf "data(%s)" v
  | Control v -> Fmt.pf ppf "ctrl(%s)" v
  | Anti v -> Fmt.pf ppf "anti(%s)" v
  | Mem a -> Fmt.pf ppf "mem(%s)" a

let pp_edge ppf e =
  Fmt.pf ppf "%d -%a-> %d" e.src pp_edge_kind e.kind e.dst

type t = {
  region : Region.t;
  n : int;  (** number of statements (= fibers after splitting) *)
  edges : edge list;
  must_merge : (int * int) list;
  live_in : SS.t;  (** scalars read but never defined (excluding induction) *)
  loop_carried : SS.t;
  defs : int list SM.t;  (** var -> defining stmt ids, program order *)
  owners : int SM.t;  (** var -> last defining stmt id *)
}

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(** Count of pure data-dependence edges between distinct statements — the
    "Data Deps" column of Table III. *)
let data_dep_count t =
  List.length
    (List.filter (fun e -> match e.kind with Data _ -> true | _ -> false)
       t.edges)

let analyze (r : Region.t) =
  let stmts = Array.of_list r.Region.stmts in
  let n = Array.length stmts in
  let k = r.Region.kernel in
  let induction = k.Kernel.index in
  (* Def and use sites. *)
  let defs = ref SM.empty and uses = ref SM.empty and pred_uses = ref SM.empty in
  let add map v id =
    map := SM.update v (function None -> Some [ id ] | Some l -> Some (id :: l)) !map
  in
  Array.iter
    (fun (s : Region.sstmt) ->
      (match Region.sstmt_def s with
      | Some v ->
        if String.equal v induction then
          unsupported "assignment to induction variable %s" v;
        add defs v s.Region.id
      | None -> ());
      SS.iter (fun v -> add uses v s.Region.id) (Region.sstmt_uses s);
      SS.iter (fun v -> add pred_uses v s.Region.id) (Region.sstmt_pred_vars s))
    stmts;
  let defs = SM.map List.rev !defs
  and uses = SM.map List.rev !uses
  and pred_uses = SM.map List.rev !pred_uses in
  let defs_of v = Option.value ~default:[] (SM.find_opt v defs) in
  let uses_of v = Option.value ~default:[] (SM.find_opt v uses) in
  let pred_uses_of v = Option.value ~default:[] (SM.find_opt v pred_uses) in
  let preds_of id = stmts.(id).Region.preds in
  let edges : (int * int * edge_kind, unit) Hashtbl.t = Hashtbl.create 256 in
  let must_merge : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let add_edge src dst kind =
    if src <> dst then Hashtbl.replace edges (src, dst, kind) ()
  in
  let merge a b = if a <> b then Hashtbl.replace must_merge (min a b, max a b) () in
  let live_in = ref SS.empty and loop_carried = ref SS.empty in
  let all_read =
    SM.fold (fun v _ acc -> SS.add v acc) uses SS.empty
    |> SM.fold (fun v _ acc -> SS.add v acc) pred_uses
  in
  SS.iter
    (fun v ->
      if defs_of v = [] && not (String.equal v induction) then begin
        if Kernel.find_scalar k v = None then
          unsupported "undefined scalar %s" v;
        live_in := SS.add v !live_in
      end)
    all_read;
  (* Scalar dependences. *)
  SM.iter
    (fun v dlist ->
      let ulist = uses_of v in
      let first_def = List.hd dlist in
      let carried = List.exists (fun u -> u <= first_def) ulist in
      if carried then begin
        if Kernel.find_scalar k v = None then
          unsupported
            "loop-carried scalar %s is not a declared (initialized) scalar" v;
        loop_carried := SS.add v !loop_carried
      end;
      (match dlist with
      | [ d ] ->
        List.iter
          (fun u ->
            if u > d then begin
              if not (Region.preds_prefix (preds_of d) (preds_of u)) then
                unsupported
                  "scalar %s defined under predicates that do not guard its \
                   use (stmt %d -> %d)"
                  v d u;
              add_edge d u (Data v)
            end
            else begin
              (* Reads the previous iteration's value: co-locate and keep
                 the read before the overwrite. *)
              merge u d;
              add_edge u d (Anti v)
            end)
          ulist;
        List.iter
          (fun s ->
            if not (Region.preds_prefix (preds_of d) (preds_of s)) then
              unsupported "predicate %s not in scope at stmt %d" v s;
            add_edge d s (Control v))
          (pred_uses_of v)
      | _ :: _ :: _ ->
        if pred_uses_of v <> [] then
          unsupported "multiply-defined scalar %s used as a predicate" v;
        (* Single owner: co-locate every access. *)
        List.iter (fun d -> merge first_def d) dlist;
        List.iter (fun u -> merge first_def u) ulist;
        (* Flow edges from the last def preceding each use, anti edges to
           the next def following it, output edges between defs. *)
        let rec consecutive = function
          | a :: (b :: _ as rest) ->
            add_edge a b (Anti v);
            consecutive rest
          | [ _ ] | [] -> ()
        in
        consecutive dlist;
        List.iter
          (fun u ->
            (match List.filter (fun d -> d < u) dlist with
            | [] -> ()
            | ds -> add_edge (List.nth ds (List.length ds - 1)) u (Data v));
            match List.find_opt (fun d -> d > u) dlist with
            | Some d' -> add_edge u d' (Anti v)
            | None -> ())
          ulist
      | [] -> assert false))
    defs;
  (* Memory dependences. *)
  let affine_env : (string, Affine.t) Hashtbl.t = Hashtbl.create 32 in
  let lookup v = Hashtbl.find_opt affine_env v in
  let affine_of e = Affine.of_expr ~induction ~lookup e in
  (* Forward pass recording affine values of unconditional single-def temps. *)
  Array.iter
    (fun (s : Region.sstmt) ->
      match (s.Region.lhs, s.Region.preds) with
      | Region.Lscalar v, [] when List.length (defs_of v) = 1 -> (
        match affine_of s.Region.rhs with
        | Some a -> Hashtbl.replace affine_env v a
        | None -> ())
      | _ -> ())
    stmts;
  let stores = ref [] and load_sites = ref [] in
  Array.iter
    (fun (s : Region.sstmt) ->
      (match s.Region.lhs with
      | Region.Lstore (a, idx) ->
        stores := (s.Region.id, a, affine_of idx) :: !stores
      | Region.Lscalar _ -> ());
      List.iter
        (fun (a, idx) -> load_sites := (s.Region.id, a, affine_of idx) :: !load_sites)
        (Expr.loads s.Region.rhs))
    stmts;
  let stores = List.rev !stores and load_sites = List.rev !load_sites in
  List.iter
    (fun (s1, a1, i1) ->
      (* store-store ordering *)
      List.iter
        (fun (s2, a2, i2) ->
          if s1 < s2 && String.equal a1 a2 && Affine.may_alias i1 i2 then begin
            merge s1 s2;
            add_edge s1 s2 (Mem a1)
          end)
        stores;
      (* store-load (flow and anti) ordering *)
      List.iter
        (fun (u, a2, i2) ->
          if String.equal a1 a2 && Affine.may_alias i1 i2 then
            if s1 < u then begin
              merge s1 u;
              add_edge s1 u (Mem a1)
            end
            else if u < s1 then begin
              merge s1 u;
              add_edge u s1 (Mem a1)
            end)
        load_sites)
    stores;
  let owners =
    SM.fold
      (fun v dlist acc ->
        match dlist with
        | [] -> acc
        | l -> SM.add v (List.nth l (List.length l - 1)) acc)
      defs SM.empty
  in
  {
    region = r;
    n;
    edges = Hashtbl.fold (fun (src, dst, kind) () acc -> { src; dst; kind } :: acc) edges [];
    must_merge = Hashtbl.fold (fun p () acc -> p :: acc) must_merge [];
    live_in = !live_in;
    loop_carried = !loop_carried;
    defs;
    owners;
  }

(** Edges sorted for deterministic processing. *)
let sorted_edges t = List.sort compare t.edges

let pp ppf t =
  Fmt.pf ppf "@[<v>%d stmts, %d edges, %d must-merge@,%a@]" t.n
    (List.length t.edges)
    (List.length t.must_merge)
    Fmt.(list ~sep:(any "@,") pp_edge)
    (sorted_edges t)
