(** Affine analysis of array subscripts.

    Classifies index expressions as [k * i + c] (with [i] the loop
    induction variable and [k], [c] integer constants) so the memory
    dependence test can distinguish provably disjoint accesses from
    may-aliasing ones.  Anything it cannot prove affine is treated
    conservatively by {!Deps}. *)

open Finepar_ir

type t = { k : int; c : int }  (** the subscript value is [k * i + c] *)

let pp ppf { k; c } = Fmt.pf ppf "%d*i%+d" k c

let equal a b = a.k = b.k && a.c = b.c

let const c = { k = 0; c }

(** Symbolically evaluate an index expression.  [lookup v] returns the
    affine value of a region temporary [v] when its (unconditional, unique)
    definition was itself affine. *)
let rec of_expr ~induction ~lookup e =
  let open Types in
  match e with
  | Expr.Const (VInt n) -> Some (const n)
  | Expr.Const (VFloat _) -> None
  | Expr.Var v ->
    if String.equal v induction then Some { k = 1; c = 0 } else lookup v
  | Expr.Binop (op, a, b) -> (
    let va = of_expr ~induction ~lookup a
    and vb = of_expr ~induction ~lookup b in
    match (op, va, vb) with
    | Add, Some x, Some y -> Some { k = x.k + y.k; c = x.c + y.c }
    | Sub, Some x, Some y -> Some { k = x.k - y.k; c = x.c - y.c }
    | Mul, Some x, Some y when x.k = 0 -> Some { k = x.c * y.k; c = x.c * y.c }
    | Mul, Some x, Some y when y.k = 0 -> Some { k = y.c * x.k; c = y.c * x.c }
    | _, _, _ -> None)
  | Expr.Unop (Neg, a) -> (
    match of_expr ~induction ~lookup a with
    | Some x -> Some { k = -x.k; c = -x.c }
    | None -> None)
  | Expr.Load _ | Expr.Unop _ | Expr.Select _ -> None

(** May two subscripts of the same array refer to the same element in the
    same or different iterations of the loop?  [None] for either subscript
    means "unknown", which is treated as may-alias. *)
let may_alias a b =
  match (a, b) with
  | None, _ | _, None -> true
  | Some x, Some y ->
    if x.k = y.k then
      if x.k = 0 then x.c = y.c
      else (y.c - x.c) mod x.k = 0
        (* same stride: collision iff offset difference is a multiple of
           the stride (then some pair of iterations touches the same
           element) *)
    else true (* different strides: conservatively assume a collision *)

(** Do the two subscripts collide within a single iteration? *)
let same_iteration_alias a b =
  match (a, b) with
  | None, _ | _, None -> true
  | Some x, Some y -> equal x y
