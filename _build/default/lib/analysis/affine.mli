(** Affine analysis of array subscripts.

    Classifies index expressions as [k * i + c] (with [i] the loop
    induction variable and [k], [c] integer constants) so the memory
    dependence test can distinguish provably disjoint accesses from
    may-aliasing ones.  Anything it cannot prove affine is treated
    conservatively by {!Deps}. *)

type t = { k : int; c : int; }
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val const : int -> t
val of_expr :
  induction:String.t ->
  lookup:(string -> t option) -> Finepar_ir.Expr.t -> t option
val may_alias : t option -> t option -> bool
val same_iteration_alias : t option -> t option -> bool
