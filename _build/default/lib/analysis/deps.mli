(** Dependence analysis over a (fiber-split) region.

    Produces the edges of the code graph (Section III-B: "Edges between
    nodes represent data and control dependences ... determined from
    use-def analysis, aliasing information, and dependence vectors") plus
    the set of must-merge constraints that keep the generated code free of
    cross-core memory-carried and loop-carried traffic:

    - multiply-defined scalars are owned by a single core (all defs and
      uses co-located);
    - loop-carried scalar reads are co-located with the defs they race
      with;
    - may-aliasing memory accesses to the same array are co-located and
      ordered.

    These constraints are what lets the compiler statically guarantee that
    every enqueue is matched by a dequeue (Section III-I). *)

module SS : Set.S with type elt = String.t and type t = Set.Make(String).t
module SM : Map.S with type key = String.t and type +'a t = 'a Map.Make(String).t
type edge_kind =
    Data of string
  | Control of string
  | Anti of string
  | Mem of string
type edge = { src : int; dst : int; kind : edge_kind; }
val pp_edge_kind : Format.formatter -> edge_kind -> unit
val pp_edge : Format.formatter -> edge -> unit
type t = {
  region : Finepar_ir.Region.t;
  n : int;
  edges : edge list;
  must_merge : (int * int) list;
  live_in : SS.t;
  loop_carried : SS.t;
  defs : int list SM.t;
  owners : int SM.t;
}
exception Unsupported of string
val unsupported : ('a, Format.formatter, unit, 'b) format4 -> 'a
val data_dep_count : t -> int
val analyze : Finepar_ir.Region.t -> t
val sorted_edges : t -> edge list
val pp : Format.formatter -> t -> unit
