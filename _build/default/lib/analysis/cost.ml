(** Static execution-time estimates for region statements.

    "The compute time is a static estimate obtained using fixed latencies
    for compute operations, and profile feedback data for memory access
    miss latencies" (Section III-B).  Estimates feed the merge-affinity
    heuristic; they are deliberately approximate (Section III-I notes the
    compiler cannot estimate time accurately). *)

open Finepar_ir

(** Estimated cycles to evaluate an expression: operator latencies plus
    profiled load latencies. *)
let rec expr_cycles ~tenv ~(profile : Profile.t) e =
  match e with
  | Expr.Const _ | Expr.Var _ -> 0
  | Expr.Load (a, idx) ->
    Profile.load_latency profile a + expr_cycles ~tenv ~profile idx
  | Expr.Unop (op, x) ->
    Op_cost.unop_latency op (Expr.infer tenv e)
    + expr_cycles ~tenv ~profile x
  | Expr.Binop (op, x, y) ->
    Op_cost.binop_latency op (Expr.infer tenv x)
    + expr_cycles ~tenv ~profile x
    + expr_cycles ~tenv ~profile y
  | Expr.Select (c, t, f) ->
    Op_cost.select_latency
    + expr_cycles ~tenv ~profile c
    + expr_cycles ~tenv ~profile t
    + expr_cycles ~tenv ~profile f

let store_cycles = 1

(** Estimated cycles for one flat statement. *)
let sstmt_cycles ~tenv ~profile (s : Region.sstmt) =
  let rhs = expr_cycles ~tenv ~profile s.Region.rhs in
  match s.Region.lhs with
  | Region.Lscalar _ -> rhs
  | Region.Lstore (_, idx) ->
    rhs + store_cycles + expr_cycles ~tenv ~profile idx

(** Type environment for a region that may contain flattening/fiber
    temporaries: temporary types are reconstructed by forward inference
    over the statement list. *)
let region_tenv (r : Region.t) : Expr.tenv =
  let k = r.Region.kernel in
  let base = Kernel.tenv k in
  let temp_ty : (string, Types.ty) Hashtbl.t = Hashtbl.create 64 in
  let env =
    {
      base with
      Expr.var_ty =
        (fun v ->
          match Hashtbl.find_opt temp_ty v with
          | Some t -> t
          | None -> base.Expr.var_ty v);
    }
  in
  List.iter
    (fun (s : Region.sstmt) ->
      match s.Region.lhs with
      | Region.Lscalar v ->
        if Kernel.find_scalar k v = None && not (String.equal v k.Kernel.index)
        then Hashtbl.replace temp_ty v (Expr.infer env s.Region.rhs)
      | Region.Lstore _ -> ())
    r.Region.stmts;
  env
