(** Profile feedback for the static cost model.

    The paper's compiler "uses profile feedback data for memory access miss
    latencies" (Section III-B) because it cannot predict memory delays
    statically (Section III-I, limitation 3).  We reproduce the mechanism:
    a profile maps each array to an L1 miss rate, typically collected from
    a sequential simulator run ({!Finepar_machine.Sim} exposes the
    counters), and the cost model prices loads with it. *)

type t = {
  miss_rate : string -> float;  (** array name -> fraction of loads missing L1 *)
  hit_latency : int;
  miss_latency : int;
}

let default_hit_latency = 6
let default_miss_latency = 40

(** A profile that assumes every load hits L1. *)
let all_hits =
  {
    miss_rate = (fun _ -> 0.0);
    hit_latency = default_hit_latency;
    miss_latency = default_miss_latency;
  }

(** Build a profile from measured per-array (loads, misses) counters. *)
let of_counters ?(hit_latency = default_hit_latency)
    ?(miss_latency = default_miss_latency) counters =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (name, loads, misses) ->
      let rate = if loads = 0 then 0.0 else float_of_int misses /. float_of_int loads in
      Hashtbl.replace table name rate)
    counters;
  {
    miss_rate = (fun a -> Option.value ~default:0.0 (Hashtbl.find_opt table a));
    hit_latency;
    miss_latency;
  }

(** Expected latency of one load from array [a]. *)
let load_latency t a =
  let r = t.miss_rate a in
  int_of_float
    (Float.round
       (((1.0 -. r) *. float_of_int t.hit_latency)
       +. (r *. float_of_int t.miss_latency)))
