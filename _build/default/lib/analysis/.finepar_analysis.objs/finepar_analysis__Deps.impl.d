lib/analysis/deps.ml: Affine Array Expr Finepar_ir Fmt Format Hashtbl Kernel List Map Option Region Set String
