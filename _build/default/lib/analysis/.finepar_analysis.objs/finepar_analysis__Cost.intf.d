lib/analysis/cost.mli: Finepar_ir Profile
