lib/analysis/deps.mli: Finepar_ir Format Map Set String
