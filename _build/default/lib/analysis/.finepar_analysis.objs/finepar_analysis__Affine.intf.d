lib/analysis/affine.mli: Finepar_ir Format String
