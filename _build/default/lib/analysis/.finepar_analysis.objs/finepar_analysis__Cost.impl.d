lib/analysis/cost.ml: Expr Finepar_ir Hashtbl Kernel List Op_cost Profile Region String Types
