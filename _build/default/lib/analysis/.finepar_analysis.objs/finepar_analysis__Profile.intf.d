lib/analysis/profile.mli:
