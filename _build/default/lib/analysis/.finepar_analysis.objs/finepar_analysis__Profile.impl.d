lib/analysis/profile.ml: Float Hashtbl List Option
