lib/analysis/affine.ml: Expr Finepar_ir Fmt String Types
