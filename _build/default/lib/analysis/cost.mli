(** Static execution-time estimates for region statements.

    "The compute time is a static estimate obtained using fixed latencies
    for compute operations, and profile feedback data for memory access
    miss latencies" (Section III-B).  Estimates feed the merge-affinity
    heuristic; they are deliberately approximate (Section III-I notes the
    compiler cannot estimate time accurately). *)

val expr_cycles :
  tenv:Finepar_ir.Expr.tenv ->
  profile:Profile.t -> Finepar_ir.Expr.t -> int
val store_cycles : int
val sstmt_cycles :
  tenv:Finepar_ir.Expr.tenv ->
  profile:Profile.t -> Finepar_ir.Region.sstmt -> int
val region_tenv : Finepar_ir.Region.t -> Finepar_ir.Expr.tenv
