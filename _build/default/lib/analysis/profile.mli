(** Profile feedback for the static cost model.

    The paper's compiler "uses profile feedback data for memory access miss
    latencies" (Section III-B) because it cannot predict memory delays
    statically (Section III-I, limitation 3).  We reproduce the mechanism:
    a profile maps each array to an L1 miss rate, typically collected from
    a sequential simulator run ({!Finepar_machine.Sim} exposes the
    counters), and the cost model prices loads with it. *)

type t = {
  miss_rate : string -> float;
  hit_latency : int;
  miss_latency : int;
}
val default_hit_latency : int
val default_miss_latency : int
val all_hits : t
val of_counters :
  ?hit_latency:int -> ?miss_latency:int -> (string * int * int) list -> t
val load_latency : t -> string -> int
