(** Loop characterization (Section IV).

    The paper inspects the hot loops of the Sequoia tier-1 benchmarks and
    buckets them:

    - initialization loops that "lack arithmetic operations";
    - loops "better suited to traditional loop parallelization" — few
      operations per iteration, dependences at most a reduction
      (8 scalar reductions, 1 array reduction, the rest elementwise);
    - loops with "many conditionals in the loop body, with variables in
      the conditional expressions involved in read-after-write
      dependences";
    - everything else: candidates for fine-grained parallelization.

    This module computes the same judgment mechanically from measurable
    features of a kernel. *)

open Finepar_ir
open Finepar_analysis
module SS = Set.Make (String)

type category =
  | Init_loop
  | Elementwise
  | Scalar_reduction
  | Array_reduction
  | Conditional_raw
  | Fine_grained

let category_name = function
  | Init_loop -> "initialization"
  | Elementwise -> "loop-parallel (elementwise)"
  | Scalar_reduction -> "loop-parallel (scalar reduction)"
  | Array_reduction -> "loop-parallel (array reduction)"
  | Conditional_raw -> "conditional RAW chains"
  | Fine_grained -> "fine-grained candidate"

(** Whether the category belongs to the paper's "better suited to
    traditional loop parallelization" bucket. *)
let is_loop_parallel = function
  | Elementwise | Scalar_reduction | Array_reduction -> true
  | Init_loop | Conditional_raw | Fine_grained -> false

type features = {
  ops : int;  (** compute operators per iteration *)
  conditionals : int;  (** conditional structures in the body *)
  accumulators : int;  (** scalars updated as [v = v op ...] *)
  array_rmw_gather : bool;
      (** a store to [a[idx]] whose value reads [a] with a non-affine
          subscript — the amg-style array reduction *)
  pred_raw_chain : bool;
      (** some condition variable depends (directly or through a
          loop-carried scalar) on a value produced under a predicate *)
  stores : int;
}

let count_conditionals body =
  let count = ref 0 in
  Stmt.iter_block
    (fun s -> match s with Stmt.If _ -> incr count | _ -> ())
    body;
  !count

let features (k : Kernel.t) =
  let body = k.Kernel.body in
  let ops = Stmt.op_count body in
  let conditionals = count_conditionals body in
  let stores = ref 0 in
  let accumulators = ref SS.empty in
  let array_rmw_gather = ref false in
  let region = Region.of_kernel k in
  Stmt.iter_block
    (fun s ->
      match s with
      | Stmt.Assign (v, e) ->
        if SS.mem v (Expr.vars e) then accumulators := SS.add v !accumulators
      | Stmt.Store (a, idx, e) ->
        incr stores;
        let gathered =
          match idx with
          | Expr.Const _ -> false
          | Expr.Var x when String.equal x k.Kernel.index -> false
          | _ ->
            (* Non-trivial subscript: check affinity in the induction. *)
            Affine.of_expr ~induction:k.Kernel.index
              ~lookup:(fun _ -> None)
              idx
            = None
        in
        if gathered && SS.mem a (Expr.arrays_read e) then
          array_rmw_gather := true
      | Stmt.If _ -> ())
    body;
  (* Predicate RAW chains: a condition variable whose defining statement
     reads a value defined under a predicate or a loop-carried scalar. *)
  let pred_raw_chain =
    try
      let deps = Deps.analyze region in
      let stmts = Array.of_list region.Region.stmts in
      let pred_vars =
        Array.to_seq stmts
        |> Seq.concat_map (fun s -> List.to_seq s.Region.preds)
        |> Seq.fold_left (fun acc p -> SS.add p.Region.cnd acc) SS.empty
      in
      SS.exists
        (fun c ->
          match Deps.SM.find_opt c deps.Deps.defs with
          | Some (d :: _) ->
            let reads = Region.sstmt_uses stmts.(d) in
            SS.exists
              (fun r ->
                SS.mem r deps.Deps.loop_carried
                || (match Deps.SM.find_opt r deps.Deps.defs with
                   | Some defs ->
                     List.exists (fun i -> stmts.(i).Region.preds <> []) defs
                   | None -> false))
              reads
          | Some [] | None -> false)
        pred_vars
    with Deps.Unsupported _ -> false
  in
  {
    ops;
    conditionals;
    accumulators = SS.cardinal !accumulators;
    array_rmw_gather = !array_rmw_gather;
    pred_raw_chain;
    stores = !stores;
  }

(** The classification rules, in priority order. *)
let classify_features f =
  if f.ops = 0 then Init_loop
  else if
    f.conditionals >= 4 && f.pred_raw_chain
    && float_of_int f.ops /. float_of_int (f.conditionals + 1) < 2.0
  then Conditional_raw
  else if f.conditionals = 0 && f.ops < 10 then
    if f.array_rmw_gather then Array_reduction
    else if f.accumulators = 1 && f.ops <= 6 then Scalar_reduction
    else if f.accumulators = 0 && f.stores > 0 && f.ops <= 6 then Elementwise
    else Fine_grained
  else Fine_grained

let classify k = classify_features (features k)

(** Funnel counts over a set of loops — the Section IV table. *)
type funnel = {
  total : int;
  init : int;
  elementwise : int;
  scalar_reduction : int;
  array_reduction : int;
  conditional_raw : int;
  fine_grained : int;
}

let funnel loops =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun k ->
      let c = classify k in
      Hashtbl.replace counts c
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
    loops;
  let get c = Option.value ~default:0 (Hashtbl.find_opt counts c) in
  {
    total = List.length loops;
    init = get Init_loop;
    elementwise = get Elementwise;
    scalar_reduction = get Scalar_reduction;
    array_reduction = get Array_reduction;
    conditional_raw = get Conditional_raw;
    fine_grained = get Fine_grained;
  }

let pp_funnel ppf f =
  Fmt.pf ppf
    "@[<v>%d hot loops:@,\
     \  %2d initialization (no arithmetic)@,\
     \  %2d loop-parallel, elementwise@,\
     \  %2d loop-parallel, scalar reductions@,\
     \  %2d loop-parallel, array reductions@,\
     \  %2d conditional RAW chains@,\
     \  %2d selected for fine-grained parallelization@]"
    f.total f.init f.elementwise f.scalar_reduction f.array_reduction
    f.conditional_raw f.fine_grained
