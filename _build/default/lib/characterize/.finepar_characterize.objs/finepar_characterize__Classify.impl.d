lib/characterize/classify.ml: Affine Array Deps Expr Finepar_analysis Finepar_ir Fmt Hashtbl Kernel List Option Region Seq Set Stmt String
