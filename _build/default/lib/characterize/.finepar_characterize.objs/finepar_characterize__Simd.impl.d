lib/characterize/simd.ml: Affine Cost Deps Expr Finepar_analysis Finepar_ir Hashtbl Kernel List Profile Region Set String
