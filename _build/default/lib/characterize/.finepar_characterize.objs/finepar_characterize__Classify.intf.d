lib/characterize/classify.mli: Finepar_ir Format Set String
