lib/characterize/simd.mli: Finepar_analysis Finepar_ir Set String
