(** Loop characterization (Section IV).

    The paper inspects the hot loops of the Sequoia tier-1 benchmarks and
    buckets them:

    - initialization loops that "lack arithmetic operations";
    - loops "better suited to traditional loop parallelization" — few
      operations per iteration, dependences at most a reduction
      (8 scalar reductions, 1 array reduction, the rest elementwise);
    - loops with "many conditionals in the loop body, with variables in
      the conditional expressions involved in read-after-write
      dependences";
    - everything else: candidates for fine-grained parallelization.

    This module computes the same judgment mechanically from measurable
    features of a kernel. *)

module SS : Set.S with type elt = String.t and type t = Set.Make(String).t
type category =
    Init_loop
  | Elementwise
  | Scalar_reduction
  | Array_reduction
  | Conditional_raw
  | Fine_grained
val category_name : category -> string
val is_loop_parallel : category -> bool
type features = {
  ops : int;
  conditionals : int;
  accumulators : int;
  array_rmw_gather : bool;
  pred_raw_chain : bool;
  stores : int;
}
val count_conditionals : Finepar_ir.Stmt.t list -> int
val features : Finepar_ir.Kernel.t -> features
val classify_features : features -> category
val classify : Finepar_ir.Kernel.t -> category
type funnel = {
  total : int;
  init : int;
  elementwise : int;
  scalar_reduction : int;
  array_reduction : int;
  conditional_raw : int;
  fine_grained : int;
}
val funnel : Finepar_ir.Kernel.t list -> funnel
val pp_funnel : Format.formatter -> funnel -> unit
