(** Static SIMD-speedup estimation (the Section IV aside).

    The paper notes that SIMD execution is a complementary way to exploit
    fine-grained parallelism and reports 4-way SIMD speedups of 1.17 for
    irs-1 and 1.90 for umt2k-4, while "the code in lammps and sphot is not
    suitable for SIMD".  This estimator makes the same judgment
    mechanically: a statement vectorizes when it is unconditional, all its
    array accesses are unit-stride in the induction variable, and it does
    not participate in a loop-carried recurrence; the estimated speedup is
    Amdahl over the static cost with the vectorizable fraction sped up by
    the vector width. *)

module SS : Set.S with type elt = String.t and type t = Set.Make(String).t
type report = {
  vector_cycles : int;
  scalar_cycles : int;
  simd_speedup : float;
}
val unit_stride :
  induction:String.t ->
  lookup:(string -> Finepar_analysis.Affine.t option) ->
  Finepar_ir.Expr.t -> bool
val stmt_vectorizable :
  induction:String.t ->
  lookup:(string -> Finepar_analysis.Affine.t option) ->
  tainted:SS.t -> Finepar_ir.Region.sstmt -> bool
val estimate : ?width:int -> Finepar_ir.Kernel.t -> report
