(** Static SIMD-speedup estimation (the Section IV aside).

    The paper notes that SIMD execution is a complementary way to exploit
    fine-grained parallelism and reports 4-way SIMD speedups of 1.17 for
    irs-1 and 1.90 for umt2k-4, while "the code in lammps and sphot is not
    suitable for SIMD".  This estimator makes the same judgment
    mechanically: a statement vectorizes when it is unconditional, all its
    array accesses are unit-stride in the induction variable, and it does
    not participate in a loop-carried recurrence; the estimated speedup is
    Amdahl over the static cost with the vectorizable fraction sped up by
    the vector width. *)

open Finepar_ir
open Finepar_analysis
module SS = Set.Make (String)

type report = {
  vector_cycles : int;  (** static cycles in vectorizable statements *)
  scalar_cycles : int;
  simd_speedup : float;
}

let unit_stride ~induction ~lookup e =
  match Affine.of_expr ~induction ~lookup e with
  | Some { Affine.k = 1; _ } -> true
  | Some { Affine.k = 0; _ } -> true (* broadcast of a constant element *)
  | Some _ | None -> false

(** Is the flat statement vectorizable?  [tainted] holds scalars whose
    values are not uniformly computable per lane (loop-carried scalars
    and anything derived from a non-vectorizable statement). *)
let stmt_vectorizable ~induction ~lookup ~tainted (s : Region.sstmt) =
  s.Region.preds = []
  && (not
        (SS.exists (fun u -> SS.mem u tainted) (Region.sstmt_uses s)))
  && List.for_all
       (fun (_, idx) -> unit_stride ~induction ~lookup idx)
       (Expr.loads s.Region.rhs)
  &&
  match s.Region.lhs with
  | Region.Lscalar _ -> true
  | Region.Lstore (_, idx) -> unit_stride ~induction ~lookup idx

let estimate ?(width = 4) (k : Kernel.t) =
  let region = Region.of_kernel k in
  let induction = k.Kernel.index in
  let tenv = Cost.region_tenv region in
  let carried =
    try (Deps.analyze region).Deps.loop_carried
    with Deps.Unsupported _ -> SS.empty
  in
  let tainted = ref carried in
  (* Affine values of hoisted index temporaries, accumulated in program
     order, so unit-stride subscripts survive the flattening pre-pass. *)
  let affine_env : (string, Affine.t) Hashtbl.t = Hashtbl.create 16 in
  let lookup v = Hashtbl.find_opt affine_env v in
  let vec = ref 0 and scalar = ref 0 in
  List.iter
    (fun (s : Region.sstmt) ->
      (match (s.Region.lhs, s.Region.preds) with
      | Region.Lscalar v, [] -> (
        match Affine.of_expr ~induction ~lookup s.Region.rhs with
        | Some a -> Hashtbl.replace affine_env v a
        | None -> ())
      | _ -> ());
      let cycles = Cost.sstmt_cycles ~tenv ~profile:Profile.all_hits s in
      if stmt_vectorizable ~induction ~lookup ~tainted:!tainted s then
        vec := !vec + cycles
      else begin
        scalar := !scalar + cycles;
        match Region.sstmt_def s with
        | Some v -> tainted := SS.add v !tainted
        | None -> ()
      end)
    region.Region.stmts;
  let total = float_of_int (!vec + !scalar) in
  let simd_speedup =
    if total = 0.0 then 1.0
    else
      total
      /. ((float_of_int !vec /. float_of_int width) +. float_of_int !scalar)
  in
  { vector_cycles = !vec; scalar_cycles = !scalar; simd_speedup }
