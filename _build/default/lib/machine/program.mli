(** Multi-core machine programs: per-core code with resolved labels, the
    queue table, and the shared-memory array layout. *)

type array_layout = {
  arr_name : string;
  arr_ty : Finepar_ir.Types.ty;
  arr_len : int;
  arr_base : int;
}
type core_program = {
  code : Isa.instr array;
  label_pos : int array;
  n_regs : int;
}
type t = {
  cores : core_program array;
  queues : Isa.queue_spec array;
  arrays : array_layout array;
}
val array_id : t -> String.t -> int
val layout_arrays :
  line:int -> Finepar_ir.Kernel.array_decl list -> array_layout array
module Builder :
  sig
    type b = {
      mutable instrs : Isa.instr list;
      mutable count : int;
      mutable labels : (int * int) list;
      mutable next_label : int;
      mutable next_reg : int;
    }
    val create : unit -> b
    val emit : b -> Isa.instr -> unit
    val fresh_label : b -> int
    val place_label : b -> int -> unit
    val fresh_reg : b -> int
    val here : b -> int
    val finish : b -> core_program
  end
val total_instrs : t -> int
val pp_core : Format.formatter -> core_program -> unit
val pp : Format.formatter -> t -> unit
