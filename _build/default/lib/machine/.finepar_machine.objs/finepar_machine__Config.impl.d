lib/machine/config.ml:
