lib/machine/program.ml: Array Finepar_ir Fmt Isa Kernel List Printf Seq String Types
