lib/machine/sim.ml: Array Buffer Cache Config Finepar_ir Fmt Fun Hashtbl Isa List Op_cost Printf Program Queue Types
