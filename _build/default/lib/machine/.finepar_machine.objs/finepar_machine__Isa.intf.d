lib/machine/isa.mli: Finepar_ir Format
