lib/machine/program.mli: Finepar_ir Format Isa String
