lib/machine/sim.mli: Cache Config Finepar_ir Isa Program Queue String
