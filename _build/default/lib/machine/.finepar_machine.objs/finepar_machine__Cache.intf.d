lib/machine/cache.mli:
