lib/machine/isa.ml: Finepar_ir Fmt Types
