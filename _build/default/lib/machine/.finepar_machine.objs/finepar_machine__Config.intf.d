lib/machine/config.mli:
