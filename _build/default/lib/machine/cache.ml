(** A direct-mapped cache model (tags only; data values live in the flat
    simulator memory, the cache decides latency). *)

type t = { line : int; sets : int; tags : int array }

let create ~bytes ~line =
  let sets = max 1 (bytes / line) in
  { line; sets; tags = Array.make sets (-1) }

let set_and_tag t addr =
  let block = addr / t.line in
  (block mod t.sets, block)

(** Probe and fill: returns whether the access hit. *)
let access t addr =
  let s, tag = set_and_tag t addr in
  if t.tags.(s) = tag then true
  else begin
    t.tags.(s) <- tag;
    false
  end

(** Probe without filling. *)
let probe t addr =
  let s, tag = set_and_tag t addr in
  t.tags.(s) = tag

let invalidate t addr =
  let s, tag = set_and_tag t addr in
  if t.tags.(s) = tag then t.tags.(s) <- -1

let clear t = Array.fill t.tags 0 t.sets (-1)
