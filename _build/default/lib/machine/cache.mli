(** A direct-mapped cache model (tags only; data values live in the flat
    simulator memory, the cache decides latency). *)

type t = { line : int; sets : int; tags : int array; }
val create : bytes:int -> line:int -> t
val set_and_tag : t -> int -> int * int
val access : t -> int -> bool
val probe : t -> int -> bool
val invalidate : t -> int -> unit
val clear : t -> unit
