(** The simulated instruction set.

    A conventional load/store scalar ISA over virtual registers, extended
    with the paper's two new instructions (Section II):

    - [Enq (q, r)] — place the value of [r] in the next free slot of queue
      [q]; stalls while the queue is full;
    - [Deq (r, q)] — load the next value of queue [q] into [r]; stalls
      until a value is available (i.e. its enqueue happened at least
      [transfer_latency] cycles ago). *)

open Finepar_ir

type reg = int

type qclass = Qint | Qfloat

(** A dedicated point-to-point queue: transfers from core [src] to core
    [dst] for one value class (there are separate queues for
    floating-point and general-purpose values, Section V). *)
type queue_spec = { src : int; dst : int; cls : qclass }

type label = int

type instr =
  | Li of reg * Types.value
  | Mov of reg * reg
  | Un of Types.unop * reg * reg  (** dst, src *)
  | Bin of Types.binop * reg * reg * reg  (** dst, a, b *)
  | Sel of reg * reg * reg * reg  (** dst, cond, if-true, if-false *)
  | Load of reg * int * reg  (** dst, array id, index reg *)
  | Store of int * reg * reg  (** array id, index reg, value reg *)
  | Enq of int * reg  (** queue id, source reg *)
  | Deq of reg * int  (** destination reg, queue id *)
  | Bz of reg * label  (** branch to label if zero *)
  | Bnz of reg * label  (** branch to label if nonzero *)
  | Jmp of label
  | Halt

let pp_instr ppf = function
  | Li (d, v) -> Fmt.pf ppf "li r%d, %a" d Types.pp_value_human v
  | Mov (d, s) -> Fmt.pf ppf "mov r%d, r%d" d s
  | Un (op, d, s) -> Fmt.pf ppf "%a r%d, r%d" Types.pp_unop op d s
  | Bin (op, d, a, b) -> Fmt.pf ppf "%a r%d, r%d, r%d" Types.pp_binop op d a b
  | Sel (d, c, t, f) -> Fmt.pf ppf "sel r%d, r%d, r%d, r%d" d c t f
  | Load (d, a, i) -> Fmt.pf ppf "load r%d, arr%d[r%d]" d a i
  | Store (a, i, s) -> Fmt.pf ppf "store arr%d[r%d], r%d" a i s
  | Enq (q, s) -> Fmt.pf ppf "enq q%d, r%d" q s
  | Deq (d, q) -> Fmt.pf ppf "deq r%d, q%d" d q
  | Bz (r, l) -> Fmt.pf ppf "bz r%d, L%d" r l
  | Bnz (r, l) -> Fmt.pf ppf "bnz r%d, L%d" r l
  | Jmp l -> Fmt.pf ppf "jmp L%d" l
  | Halt -> Fmt.string ppf "halt"

(** Source registers read by an instruction. *)
let srcs = function
  | Li _ -> []
  | Mov (_, s) -> [ s ]
  | Un (_, _, s) -> [ s ]
  | Bin (_, _, a, b) -> [ a; b ]
  | Sel (_, c, t, f) -> [ c; t; f ]
  | Load (_, _, i) -> [ i ]
  | Store (_, i, s) -> [ i; s ]
  | Enq (_, s) -> [ s ]
  | Deq _ -> []
  | Bz (r, _) | Bnz (r, _) -> [ r ]
  | Jmp _ | Halt -> []

(** Destination register written by an instruction, if any. *)
let dst = function
  | Li (d, _) | Mov (d, _) | Un (_, d, _) | Bin (_, d, _, _)
  | Sel (d, _, _, _) | Load (d, _, _) | Deq (d, _) ->
    Some d
  | Store _ | Enq _ | Bz _ | Bnz _ | Jmp _ | Halt -> None
