(** The simulated instruction set.

    A conventional load/store scalar ISA over virtual registers, extended
    with the paper's two new instructions (Section II):

    - [Enq (q, r)] — place the value of [r] in the next free slot of queue
      [q]; stalls while the queue is full;
    - [Deq (r, q)] — load the next value of queue [q] into [r]; stalls
      until a value is available (i.e. its enqueue happened at least
      [transfer_latency] cycles ago). *)

type reg = int
type qclass = Qint | Qfloat
type queue_spec = { src : int; dst : int; cls : qclass; }
type label = int
type instr =
    Li of reg * Finepar_ir.Types.value
  | Mov of reg * reg
  | Un of Finepar_ir.Types.unop * reg * reg
  | Bin of Finepar_ir.Types.binop * reg * reg * reg
  | Sel of reg * reg * reg * reg
  | Load of reg * int * reg
  | Store of int * reg * reg
  | Enq of int * reg
  | Deq of reg * int
  | Bz of reg * label
  | Bnz of reg * label
  | Jmp of label
  | Halt
val pp_instr : Format.formatter -> instr -> unit
val srcs : instr -> reg list
val dst : instr -> reg option
