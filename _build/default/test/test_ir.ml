(* IR layer tests: operator semantics, expression utilities, kernel
   validation, the reference evaluator, and the flattening pre-pass
   (including qcheck properties: flattening bounds tree height and
   preserves semantics). *)

open Finepar_ir
open Types
open Builder

let check_value = Alcotest.testable pp_value value_equal

(* ------------------------------------------------------------------ *)
(* Operator semantics.                                                 *)

let test_binop_semantics () =
  Alcotest.check check_value "int add" (VInt 7)
    (apply_binop Add (VInt 3) (VInt 4));
  Alcotest.check check_value "float mul" (VFloat 6.0)
    (apply_binop Mul (VFloat 1.5) (VFloat 4.0));
  Alcotest.check check_value "int div by zero is total" (VInt 0)
    (apply_binop Div (VInt 5) (VInt 0));
  Alcotest.check check_value "int rem by zero is total" (VInt 0)
    (apply_binop Rem (VInt 5) (VInt 0));
  Alcotest.check check_value "float compare" (VInt 1)
    (apply_binop Lt (VFloat 1.0) (VFloat 2.0));
  Alcotest.check check_value "int min" (VInt (-2))
    (apply_binop Min (VInt 5) (VInt (-2)));
  Alcotest.check check_value "shift masks its count" (VInt 2)
    (apply_binop Shl (VInt 1) (VInt 1))

let test_unop_semantics () =
  Alcotest.check check_value "neg" (VInt (-3)) (apply_unop Neg (VInt 3));
  Alcotest.check check_value "not 0" (VInt 1) (apply_unop Not (VInt 0));
  Alcotest.check check_value "not nonzero" (VInt 0) (apply_unop Not (VInt 9));
  Alcotest.check check_value "sqrt" (VFloat 3.0) (apply_unop Sqrt (VFloat 9.0));
  Alcotest.check check_value "to_int truncates" (VInt 2)
    (apply_unop To_int (VFloat 2.9));
  Alcotest.check check_value "to_float" (VFloat 5.0)
    (apply_unop To_float (VInt 5))

let test_type_errors () =
  Alcotest.check_raises "mixed operand types"
    (Type_error "apply_binop add: operand type mismatch (i64, f64)")
    (fun () -> ignore (apply_binop Add (VInt 1) (VFloat 1.0)));
  Alcotest.(check bool) "sqrt of int rejected by typing" true
    (try
       ignore (unop_result_ty Sqrt I64);
       false
     with Type_error _ -> true)

let test_value_equal_nan () =
  Alcotest.(check bool) "nan equals itself bitwise" true
    (value_equal (VFloat Float.nan) (VFloat Float.nan));
  Alcotest.(check bool) "+0 and -0 differ" false
    (value_equal (VFloat 0.0) (VFloat (-0.0)))

(* ------------------------------------------------------------------ *)
(* Expression utilities.                                               *)

let fig4_expr =
  (* (p2 % 7) + a[i] * (p1 % 13) *)
  (v "p2" %: i 7) +: (ld "a" (v "i") *: (v "p1" %: i 13))

let test_expr_utilities () =
  Alcotest.(check int) "op count" 4 (Expr.op_count fig4_expr);
  Alcotest.(check int) "height" 3 (Expr.height fig4_expr);
  Alcotest.(check (list string)) "vars"
    [ "i"; "p1"; "p2" ]
    (Expr.String_set.elements (Expr.vars fig4_expr));
  Alcotest.(check (list string)) "arrays read" [ "a" ]
    (Expr.String_set.elements (Expr.arrays_read fig4_expr));
  Alcotest.(check int) "loads" 1 (List.length (Expr.loads fig4_expr));
  Alcotest.(check bool) "equal reflexive" true (Expr.equal fig4_expr fig4_expr);
  Alcotest.(check bool) "equal distinguishes" false
    (Expr.equal fig4_expr (v "p2"))

let test_expr_subst () =
  let e = v "x" +: v "y" in
  let e' = Expr.subst (fun n -> if n = "x" then Some (i 5) else None) e in
  Alcotest.(check bool) "substituted" true (Expr.equal e' (i 5 +: v "y"))

(* ------------------------------------------------------------------ *)
(* Kernel validation.                                                  *)

let tiny body =
  kernel ~name:"t" ~index:"i" ~lo:0 ~hi:4
    ~arrays:[ farr "a" 4; farr "out" 4 ]
    ~scalars:[ fscalar "s" ] body

let test_validation_ok () =
  let k = tiny [ set "x" (ld "a" (v "i")); store "out" (v "i") (v "x") ] in
  Alcotest.(check string) "name" "t" k.Kernel.name

let expect_invalid name body =
  Alcotest.(check bool) name true
    (try
       ignore (tiny body);
       false
     with Kernel.Invalid _ -> true)

let test_validation_errors () =
  expect_invalid "unknown array" [ store "nope" (v "i") (f 1.0) ];
  expect_invalid "undefined scalar" [ store "out" (v "i") (v "ghost") ];
  expect_invalid "assign to induction" [ set "i" (i 0) ];
  expect_invalid "type change" [ set "s" (i 1) ];
  expect_invalid "f64 condition" [ if_ (f 1.0) [ set "x" (i 1) ] [] ];
  expect_invalid "f64 index" [ store "out" (f 1.0) (f 0.0) ]

let test_validation_liveout () =
  Alcotest.(check bool) "undeclared live-out rejected" true
    (try
       ignore
         (kernel ~name:"t" ~index:"i" ~lo:0 ~hi:4 ~arrays:[] ~scalars:[]
            ~live_out:[ "ghost" ] []);
       false
     with Kernel.Invalid _ -> true)

(* ------------------------------------------------------------------ *)
(* Evaluator.                                                          *)

let test_eval_basic () =
  let k =
    kernel ~name:"e" ~index:"i" ~lo:0 ~hi:5
      ~arrays:[ farr "a" 5; farr "out" 5 ]
      ~scalars:[ fscalar "sum" ]
      ~live_out:[ "sum" ]
      [
        set "x" (ld "a" (v "i") *: f 2.0);
        set "sum" (v "sum" +: v "x");
        store "out" (v "i") (v "x");
      ]
  in
  let workload = [ ("a", Array.init 5 (fun j -> VFloat (float_of_int j))) ] in
  let r = Eval.run_result ~workload k in
  Alcotest.check check_value "sum = 2*(0+1+2+3+4)" (VFloat 20.0)
    (List.assoc "sum" r.Eval.live_out);
  Alcotest.check check_value "out[3]" (VFloat 6.0)
    (List.assoc "out" r.Eval.arrays_out).(3)

let test_eval_conditional () =
  let k =
    kernel ~name:"e" ~index:"i" ~lo:0 ~hi:4
      ~arrays:[ farr "out" 4 ]
      ~scalars:[ iscalar "hits" ]
      ~live_out:[ "hits" ]
      [
        set "odd" (v "i" %: i 2);
        if_ (v "odd")
          [ set "hits" (v "hits" +: i 1); store "out" (v "i") (f 1.0) ]
          [ store "out" (v "i") (f (-1.0)) ];
      ]
  in
  let r = Eval.run_result k in
  Alcotest.check check_value "hits" (VInt 2) (List.assoc "hits" r.Eval.live_out);
  Alcotest.check check_value "out[0]" (VFloat (-1.0))
    (List.assoc "out" r.Eval.arrays_out).(0);
  Alcotest.check check_value "out[1]" (VFloat 1.0)
    (List.assoc "out" r.Eval.arrays_out).(1)

let test_eval_bounds () =
  let k = tiny [ store "out" (v "i" +: i 100) (f 0.0) ] in
  Alcotest.(check bool) "out of bounds raises" true
    (try
       ignore (Eval.run k);
       false
     with Eval.Runtime_error _ -> true)

let test_eval_select_both_arms () =
  (* Select evaluates both arms: nan from the untaken arm must not leak. *)
  let k =
    kernel ~name:"e" ~index:"i" ~lo:0 ~hi:1
      ~arrays:[ farr "out" 1 ]
      ~scalars:[]
      [ store "out" (v "i") (select (i 1) (f 2.0) (sqrt_ (f (-1.0)))) ]
  in
  let r = Eval.run_result k in
  Alcotest.check check_value "taken arm" (VFloat 2.0)
    (List.assoc "out" r.Eval.arrays_out).(0)

(* ------------------------------------------------------------------ *)
(* Flattening / regions.                                               *)

let deep_kernel =
  kernel ~name:"deep" ~index:"i" ~lo:0 ~hi:8
    ~arrays:[ farr "a" 8; farr "out" 8; iarr "idx" 8 ]
    ~scalars:[ fscalar "acc" ]
    ~live_out:[ "acc" ]
    [
      set "x"
        (sqrt_
           ((ld "a" (v "i") *: f 2.0 +: f 1.0)
           /: (ld "a" (v "i") +: f 3.0)
           +: (f 0.5 *: ld "a" (v "i") *: ld "a" (v "i"))));
      set "acc" (v "acc" +: v "x");
      store "out" (ld "idx" (v "i")) (v "x" *: v "x" +: v "x" /: f 7.0);
      if_ (v "x" >: f 1.0) [ set "acc" (v "acc" +: f 0.125) ] [];
    ]

let region_heights r =
  List.map (fun (s : Region.sstmt) -> Expr.height s.Region.rhs) r.Region.stmts

let test_flatten_bounds_height () =
  List.iter
    (fun max_height ->
      let r = Region.of_kernel ~max_height deep_kernel in
      List.iter
        (fun h ->
          Alcotest.(check bool)
            (Printf.sprintf "height %d <= %d" h max_height)
            true (h <= max_height))
        (region_heights r))
    [ 1; 2; 3; 4 ]

let test_flatten_preserves_semantics () =
  let workload = Finepar_kernels.Workload.default deep_kernel in
  let expected = Eval.run_result ~workload deep_kernel in
  List.iter
    (fun max_height ->
      let r = Region.of_kernel ~max_height deep_kernel in
      let got = Region.eval ~workload r in
      Alcotest.(check bool)
        (Printf.sprintf "region eval (h=%d) matches" max_height)
        true
        (Eval.result_equal expected got))
    [ 1; 2; 3 ]

let test_flatten_simple_indices () =
  let r = Region.of_kernel deep_kernel in
  List.iter
    (fun (s : Region.sstmt) ->
      (match s.Region.lhs with
      | Region.Lstore (_, idx) ->
        Alcotest.(check bool) "store index simple" true (Region.is_simple idx)
      | Region.Lscalar _ -> ());
      Expr.iter
        (fun e ->
          match e with
          | Expr.Load (_, idx) ->
            Alcotest.(check bool) "load index simple" true
              (Region.is_simple idx)
          | _ -> ())
        s.Region.rhs)
    r.Region.stmts

let test_flatten_predicates () =
  let r = Region.of_kernel deep_kernel in
  let conditional =
    List.filter (fun (s : Region.sstmt) -> s.Region.preds <> []) r.Region.stmts
  in
  Alcotest.(check int) "one predicated statement" 1 (List.length conditional);
  let s = List.hd conditional in
  Alcotest.(check bool) "predicate wants true" true
    (List.for_all (fun p -> p.Region.want) s.Region.preds)

let test_preds_prefix () =
  let p c w = { Region.cnd = c; want = w } in
  Alcotest.(check bool) "empty prefix" true (Region.preds_prefix [] [ p "c" true ]);
  Alcotest.(check bool) "self prefix" true
    (Region.preds_prefix [ p "c" true ] [ p "c" true ]);
  Alcotest.(check bool) "longer not prefix" false
    (Region.preds_prefix [ p "c" true; p "d" false ] [ p "c" true ]);
  Alcotest.(check bool) "mismatched want" false
    (Region.preds_prefix [ p "c" false ] [ p "c" true ])

(* ------------------------------------------------------------------ *)
(* qcheck: random expressions.                                         *)

let gen_fexpr =
  (* Random float expressions over a[i], a few scalars, and literals. *)
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun x -> Builder.f x) (float_bound_inclusive 10.0);
        return (ld "a" (v "i"));
        return (v "s1");
        return (v "s2");
      ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (1, leaf);
          ( 4,
            oneof
              [
                map2 (fun a b -> a +: b) (go (depth - 1)) (go (depth - 1));
                map2 (fun a b -> a -: b) (go (depth - 1)) (go (depth - 1));
                map2 (fun a b -> a *: b) (go (depth - 1)) (go (depth - 1));
                map2 (fun a b -> a /: b) (go (depth - 1)) (go (depth - 1));
                map (fun a -> sqrt_ (abs_ a)) (go (depth - 1));
              ] );
        ]
  in
  go 5

let arbitrary_fexpr = QCheck.make ~print:(Fmt.to_to_string Expr.pp) gen_fexpr

let kernel_of_expr e =
  kernel ~name:"q" ~index:"i" ~lo:0 ~hi:6
    ~arrays:[ farr "a" 6; farr "out" 6 ]
    ~scalars:[ fscalar ~init:1.25 "s1"; fscalar ~init:0.5 "s2" ]
    [ store "out" (v "i") e ]

let prop_flatten_height =
  QCheck.Test.make ~count:200 ~name:"flatten bounds every rhs height"
    arbitrary_fexpr (fun e ->
      let r = Region.of_kernel ~max_height:2 (kernel_of_expr e) in
      List.for_all (fun h -> h <= 2) (region_heights r))

let prop_flatten_semantics =
  QCheck.Test.make ~count:200 ~name:"flatten preserves semantics"
    arbitrary_fexpr (fun e ->
      let k = kernel_of_expr e in
      let workload = Finepar_kernels.Workload.default k in
      let expected = Eval.run_result ~workload k in
      List.for_all
        (fun max_height ->
          Eval.result_equal expected
            (Region.eval ~workload (Region.of_kernel ~max_height k)))
        [ 1; 2; 4 ])

let prop_height_zero_leaves =
  QCheck.Test.make ~count:200 ~name:"height 0 iff leaf" arbitrary_fexpr
    (fun e ->
      Expr.height e = 0
      = match e with Expr.Const _ | Expr.Var _ -> true
        | Expr.Load (_, idx) -> Expr.height idx = 0
        | _ -> false)

let () =
  Alcotest.run "ir"
    [
      ( "types",
        [
          Alcotest.test_case "binop semantics" `Quick test_binop_semantics;
          Alcotest.test_case "unop semantics" `Quick test_unop_semantics;
          Alcotest.test_case "type errors" `Quick test_type_errors;
          Alcotest.test_case "value equality" `Quick test_value_equal_nan;
        ] );
      ( "expr",
        [
          Alcotest.test_case "utilities" `Quick test_expr_utilities;
          Alcotest.test_case "subst" `Quick test_expr_subst;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "validation accepts" `Quick test_validation_ok;
          Alcotest.test_case "validation rejects" `Quick test_validation_errors;
          Alcotest.test_case "live-out declared" `Quick test_validation_liveout;
        ] );
      ( "eval",
        [
          Alcotest.test_case "basic" `Quick test_eval_basic;
          Alcotest.test_case "conditionals" `Quick test_eval_conditional;
          Alcotest.test_case "bounds checked" `Quick test_eval_bounds;
          Alcotest.test_case "select evaluates both arms" `Quick
            test_eval_select_both_arms;
        ] );
      ( "flatten",
        [
          Alcotest.test_case "bounds heights" `Quick test_flatten_bounds_height;
          Alcotest.test_case "preserves semantics" `Quick
            test_flatten_preserves_semantics;
          Alcotest.test_case "indices stay simple" `Quick
            test_flatten_simple_indices;
          Alcotest.test_case "predicates extracted" `Quick
            test_flatten_predicates;
          Alcotest.test_case "preds_prefix" `Quick test_preds_prefix;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_flatten_height; prop_flatten_semantics; prop_height_zero_leaves ]
      );
    ]
