(* Fiber partitioning tests (Section III-A), including the paper's Fig. 4
   worked example and qcheck structural properties. *)

open Finepar_ir
open Builder
open Finepar_fiber

(* ------------------------------------------------------------------ *)
(* Fig. 4: (p2 % 7) + a[i] * (p1 % 13) partitions into three fibers:
   {C}, {D, B}, {A} where C = p2 % 7, D = p1 % 13, B = a[i] * D,
   A = C + B. *)

let fig4_expr = (v "p2" %: i 7) +: (ld "a" (v "i") *: (v "p1" %: i 13))

let test_fig4 () =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "%%f%d" !counter
  in
  let pieces, root = Fiber.partition_expr ~fresh fig4_expr in
  Alcotest.(check int) "three fibers" 3 (List.length pieces);
  Alcotest.(check bool) "root assigned" true (root <> None);
  match pieces with
  | [ (Some t1, e1, false); (Some t2, e2, false); (None, e3, true) ] ->
    (* Fiber 0 = {C}: p2 % 7. *)
    Alcotest.(check bool) "fiber C" true (Expr.equal e1 (v "p2" %: i 7));
    (* Fiber 1 = {D, B}: a[i] * (p1 % 13) — B continued D's fiber. *)
    Alcotest.(check bool) "fiber D,B" true
      (Expr.equal e2 (ld "a" (v "i") *: (v "p1" %: i 13)));
    (* Fiber 2 = {A}: consumes both boundary temps. *)
    Alcotest.(check bool) "fiber A" true
      (Expr.equal e3 (Expr.Binop (Types.Add, v t1, v t2)))
  | _ -> Alcotest.fail "unexpected fiber structure"

let test_leaf_statement_single_fiber () =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "%%f%d" !counter
  in
  let pieces, root = Fiber.partition_expr ~fresh (ld "a" (v "i")) in
  Alcotest.(check int) "leaf has no operator fibers" 0 (List.length pieces);
  Alcotest.(check bool) "no root fiber" true (root = None)

(* ------------------------------------------------------------------ *)
(* Region-level splitting.                                             *)

let kernel_fig4 =
  kernel ~name:"fig4" ~index:"i" ~lo:0 ~hi:8
    ~arrays:[ farr "a" 8; iarr "p1a" 8; iarr "p2a" 8; farr "out" 8 ]
    ~scalars:[]
    [
      set "p1" (ld "p1a" (v "i"));
      set "p2" (ld "p2a" (v "i"));
      store "out" (v "i")
        (to_f ((v "p2" %: i 7) +: (to_i (ld "a" (v "i")) *: (v "p1" %: i 13))));
    ]

let test_split_counts () =
  let r = Region.of_kernel ~max_height:4 kernel_fig4 in
  let split, stats = Fiber.split r in
  Alcotest.(check int) "statements in" (List.length r.Region.stmts)
    stats.Fiber.statements_in;
  Alcotest.(check int) "fibers out"
    (List.length split.Region.stmts)
    stats.Fiber.initial_fibers;
  Alcotest.(check bool) "at least one fiber per statement" true
    (stats.Fiber.initial_fibers >= stats.Fiber.statements_in)

let test_split_preserves_semantics () =
  let workload = Finepar_kernels.Workload.default kernel_fig4 in
  let expected = Eval.run_result ~workload kernel_fig4 in
  let r = Region.of_kernel ~max_height:4 kernel_fig4 in
  let split, _ = Fiber.split r in
  Alcotest.(check bool) "split region evaluates identically" true
    (Eval.result_equal expected (Region.eval ~workload split))

let test_split_single_assignment_temps () =
  let r = Region.of_kernel kernel_fig4 in
  let split, _ = Fiber.split r in
  let defs = Hashtbl.create 16 in
  List.iter
    (fun (s : Region.sstmt) ->
      match Region.sstmt_def s with
      | Some v when String.length v > 1 && v.[0] = '%' ->
        Alcotest.(check bool) (v ^ " defined once") false (Hashtbl.mem defs v);
        Hashtbl.replace defs v ()
      | Some _ | None -> ())
    split.Region.stmts;
  Alcotest.(check bool) "some boundary temps exist" true
    (Hashtbl.length defs > 0)

let test_split_preserves_preds () =
  let k =
    kernel ~name:"p" ~index:"i" ~lo:0 ~hi:4
      ~arrays:[ farr "a" 4; farr "out" 4 ]
      ~scalars:[]
      [
        set "c" (ld "a" (v "i") >: f 1.0);
        if_ (v "c")
          [ store "out" (v "i") ((ld "a" (v "i") *: f 2.0) +: f 1.0) ]
          [];
      ]
  in
  let r = Region.of_kernel k in
  let split, _ = Fiber.split r in
  List.iter
    (fun (s : Region.sstmt) ->
      match s.Region.lhs with
      | Region.Lstore ("out", _) ->
        Alcotest.(check int) "store keeps its predicate" 1
          (List.length s.Region.preds)
      | Region.Lstore _ | Region.Lscalar _ -> ())
    split.Region.stmts

(* ------------------------------------------------------------------ *)
(* qcheck: structural properties of the partitioning.                  *)

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun x -> Builder.f x) (float_bound_inclusive 4.0);
        return (ld "a" (v "i"));
        return (ld "b" (v "i"));
        return (v "s1");
      ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (1, leaf);
          ( 5,
            oneof
              [
                map2 (fun a b -> a +: b) (go (depth - 1)) (go (depth - 1));
                map2 (fun a b -> a *: b) (go (depth - 1)) (go (depth - 1));
                map2 (fun a b -> a -: b) (go (depth - 1)) (go (depth - 1));
                map (fun a -> neg a) (go (depth - 1));
              ] );
        ]
  in
  go 6

let arbitrary_expr = QCheck.make ~print:(Fmt.to_to_string Expr.pp) gen_expr

let partition e =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "%%f%d" !counter
  in
  Fiber.partition_expr ~fresh e

let prop_fiber_count_bounded =
  QCheck.Test.make ~count:300 ~name:"fiber count <= operator count"
    arbitrary_expr (fun e ->
      let pieces, _ = partition e in
      List.length pieces <= max 1 (Expr.op_count e))

let prop_ops_conserved =
  QCheck.Test.make ~count:300 ~name:"operators conserved across fibers"
    arbitrary_expr (fun e ->
      let pieces, _ = partition e in
      let total =
        List.fold_left (fun acc (_, fe, _) -> acc + Expr.op_count fe) 0 pieces
      in
      total = Expr.op_count e)

let prop_topological_order =
  QCheck.Test.make ~count:300 ~name:"fibers are emitted in dependence order"
    arbitrary_expr (fun e ->
      let pieces, _ = partition e in
      let defined = Hashtbl.create 8 in
      List.for_all
        (fun (lhs, fe, _) ->
          let ok =
            Expr.String_set.for_all
              (fun u ->
                if String.length u > 1 && u.[0] = '%' then Hashtbl.mem defined u
                else true)
              (Expr.vars fe)
          in
          (match lhs with Some t -> Hashtbl.replace defined t () | None -> ());
          ok)
        pieces)

let prop_exactly_one_root =
  QCheck.Test.make ~count:300 ~name:"exactly one root fiber for non-leaves"
    arbitrary_expr (fun e ->
      let pieces, root = partition e in
      match root with
      | None -> pieces = []
      | Some _ -> List.length (List.filter (fun (_, _, r) -> r) pieces) = 1)

let () =
  Alcotest.run "fiber"
    [
      ( "fig4",
        [
          Alcotest.test_case "paper example: three fibers" `Quick test_fig4;
          Alcotest.test_case "leaf statements" `Quick
            test_leaf_statement_single_fiber;
        ] );
      ( "split",
        [
          Alcotest.test_case "counts" `Quick test_split_counts;
          Alcotest.test_case "semantics preserved" `Quick
            test_split_preserves_semantics;
          Alcotest.test_case "boundary temps single-assignment" `Quick
            test_split_single_assignment_temps;
          Alcotest.test_case "predicates preserved" `Quick
            test_split_preserves_preds;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_fiber_count_bounded;
            prop_ops_conserved;
            prop_topological_order;
            prop_exactly_one_root;
          ] );
    ]
