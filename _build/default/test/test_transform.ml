(* Transformation tests: control-flow speculation (eligibility rules and
   semantics preservation) and communication insertion (coverage and
   FIFO consistency of the computed transfers). *)

open Finepar_ir
open Finepar_analysis
open Finepar_partition
open Finepar_transform
open Builder

(* ------------------------------------------------------------------ *)
(* Speculation.                                                        *)

let base_kernel body =
  kernel ~name:"s" ~index:"i" ~lo:0 ~hi:8
    ~arrays:[ farr "a" 8; farr "b" 8; farr "out" 8 ]
    ~scalars:[ fscalar "acc"; fscalar ~init:1.0 "thr"; fscalar "x" ]
    ~live_out:[ "acc" ] body

let selection_body =
  [
    set "c" (ld "a" (v "i") >: v "thr");
    if_ (v "c")
      [ set "x" (ld "a" (v "i") *: f 2.0); set "y" (v "x" +: f 1.0) ]
      [ set "y" (ld "b" (v "i")) ];
    store "out" (v "i") (v "y");
  ]

let test_speculation_applies () =
  let k = base_kernel selection_body in
  let k', count = Speculate.apply k in
  Alcotest.(check int) "one conditional converted" 1 count;
  (* No structured conditionals remain. *)
  let ifs = ref 0 in
  Stmt.iter_block
    (fun s -> match s with Stmt.If _ -> incr ifs | _ -> ())
    k'.Kernel.body;
  Alcotest.(check int) "no ifs remain" 0 !ifs;
  (* Selects appear. *)
  let selects = ref 0 in
  Stmt.iter_block
    (fun s ->
      List.iter
        (fun e ->
          Expr.iter
            (fun e -> match e with Expr.Select _ -> incr selects | _ -> ())
            e)
        (Stmt.exprs s))
    k'.Kernel.body;
  Alcotest.(check bool) "selects inserted" true (!selects >= 1)

let test_speculation_preserves_semantics () =
  let k = base_kernel selection_body in
  let k', _ = Speculate.apply k in
  let workload = Finepar_kernels.Workload.default k in
  Alcotest.(check bool) "same results" true
    (Eval.result_equal
       (Eval.run_result ~workload k)
       (Eval.run_result ~workload k'))

let test_speculation_skips_stores () =
  let k =
    base_kernel
      [
        set "c" (ld "a" (v "i") >: v "thr");
        if_ (v "c") [ store "out" (v "i") (f 1.0) ] [ set "x" (f 0.0) ];
      ]
  in
  let _, count = Speculate.apply k in
  Alcotest.(check int) "stores make a branch ineligible" 0 count

let test_speculation_skips_accumulators () =
  let k =
    base_kernel
      [
        set "c" (ld "a" (v "i") >: v "thr");
        if_ (v "c") [ set "acc" (v "acc" +: f 1.0) ] [];
      ]
  in
  let _, count = Speculate.apply k in
  Alcotest.(check int) "guarded reductions are not speculated" 0 count

let test_speculation_skips_nested () =
  let k =
    base_kernel
      [
        set "c" (ld "a" (v "i") >: v "thr");
        set "d" (ld "b" (v "i") >: v "thr");
        if_ (v "c") [ when_ (v "d") [ set "x" (f 1.0) ]; ] [ set "x" (f 2.0) ];
        set "acc" (v "acc" +: f 1.0);
      ]
  in
  let _, count = Speculate.apply k in
  Alcotest.(check int) "nested conditionals ineligible (outer)" 1 count
  (* the inner [when_] becomes eligible after recursion into the arm is
     skipped; only the inner single-arm if converts *)

let test_speculation_one_sided () =
  (* A variable assigned in only one arm selects against its old value. *)
  let k =
    kernel ~name:"s" ~index:"i" ~lo:0 ~hi:8
      ~arrays:[ farr "a" 8; farr "out" 8 ]
      ~scalars:[ fscalar ~init:5.0 "x" ]
      [
        set "c" (ld "a" (v "i") >: f 1.0);
        if_ (v "c") [ set "x" (ld "a" (v "i")) ] [];
        store "out" (v "i") (v "x");
      ]
  in
  let k', count = Speculate.apply k in
  Alcotest.(check int) "converted" 1 count;
  let workload = Finepar_kernels.Workload.default k in
  Alcotest.(check bool) "keeps the old value when untaken" true
    (Eval.result_equal
       (Eval.run_result ~workload k)
       (Eval.run_result ~workload k'))

let test_speculation_all_kernels_semantics () =
  List.iter
    (fun (e : Finepar_kernels.Registry.entry) ->
      let k = e.Finepar_kernels.Registry.kernel in
      let k', _ = Speculate.apply k in
      let workload = e.Finepar_kernels.Registry.workload in
      Alcotest.(check bool)
        (k.Kernel.name ^ " speculation preserves semantics")
        true
        (Eval.result_equal
           (Eval.run_result ~workload k)
           (Eval.run_result ~workload k')))
    Finepar_kernels.Registry.all

(* ------------------------------------------------------------------ *)
(* Communication insertion.                                            *)

let comm_of kernel ~cores =
  let region = Region.of_kernel kernel in
  let split, _ = Finepar_fiber.Fiber.split region in
  let deps = Deps.analyze split in
  let graph = Code_graph.build ~profile:Profile.all_hits split deps in
  let merge = Merge.run ~cores graph in
  let order = Schedule.order graph ~cluster_of:merge.Merge.cluster_of in
  let comm =
    Comm.compute ~region:split ~deps ~cluster_of:merge.Merge.cluster_of ~order
      ~queue_len:20
  in
  (split, deps, merge, order, comm)

let test_comm_covers_cross_edges () =
  let e = Option.get (Finepar_kernels.Registry.find "umt2k-4") in
  let _, deps, merge, _, comm = comm_of e.Finepar_kernels.Registry.kernel ~cores:4 in
  (* Every cross-cluster data/control edge must have a transfer for its
     variable to the consumer's core. *)
  List.iter
    (fun (ed : Deps.edge) ->
      match ed.Deps.kind with
      | Deps.Data var | Deps.Control var ->
        let sc = merge.Merge.cluster_of.(ed.Deps.src)
        and dc = merge.Merge.cluster_of.(ed.Deps.dst) in
        if sc <> dc then
          Alcotest.(check bool)
            (Fmt.str "transfer for %s %d->%d (edge %a)" var sc dc Deps.pp_edge
               ed)
            true
            (List.exists
               (fun (tr : Comm.transfer) ->
                 String.equal tr.Comm.var var
                 && tr.Comm.src_core = sc && tr.Comm.dst_core = dc)
               comm.Comm.transfers)
      | Deps.Anti _ | Deps.Mem _ ->
        (* Anti and memory edges never cross clusters (must-merge). *)
        Alcotest.(check int)
          (Fmt.str "edge %a intra-cluster" Deps.pp_edge ed)
          merge.Merge.cluster_of.(ed.Deps.src)
          merge.Merge.cluster_of.(ed.Deps.dst))
    deps.Deps.edges

let test_comm_anchors_ordered () =
  let e = Option.get (Finepar_kernels.Registry.find "lammps-3") in
  let _, _, _, order, comm = comm_of e.Finepar_kernels.Registry.kernel ~cores:4 in
  let n = List.length order in
  List.iter
    (fun (tr : Comm.transfer) ->
      Alcotest.(check bool) "enqueue anchored before dequeue" true
        (tr.Comm.enq_anchor < tr.Comm.deq_anchor);
      Alcotest.(check bool) "anchors in range" true
        (tr.Comm.enq_anchor >= 0 && tr.Comm.deq_anchor < n))
    comm.Comm.transfers

let test_comm_seq_matches_enq_order () =
  let e = Option.get (Finepar_kernels.Registry.find "irs-5") in
  let _, _, _, _, comm = comm_of e.Finepar_kernels.Registry.kernel ~cores:4 in
  (* Within a queue, seq numbers must be strictly increasing with the
     enqueue anchor. *)
  let by_queue = Hashtbl.create 8 in
  List.iter
    (fun (tr : Comm.transfer) ->
      let key = (tr.Comm.src_core, tr.Comm.dst_core, tr.Comm.ty) in
      Hashtbl.replace by_queue key
        (tr :: Option.value ~default:[] (Hashtbl.find_opt by_queue key)))
    comm.Comm.transfers;
  Hashtbl.iter
    (fun _ trs ->
      let sorted =
        List.sort (fun a b -> compare a.Comm.seq b.Comm.seq) trs
      in
      let rec check = function
        | a :: (b :: _ as rest) ->
          Alcotest.(check bool) "seq follows enqueue order" true
            (a.Comm.enq_anchor <= b.Comm.enq_anchor);
          check rest
        | [ _ ] | [] -> ()
      in
      check sorted)
    by_queue

let test_comm_counts () =
  let e = Option.get (Finepar_kernels.Registry.find "lammps-1") in
  let _, _, _, _, comm = comm_of e.Finepar_kernels.Registry.kernel ~cores:4 in
  Alcotest.(check int) "com_ops = 2 * transfers"
    (2 * List.length comm.Comm.transfers)
    comm.Comm.com_ops;
  Alcotest.(check bool) "pairs used nonempty" true (comm.Comm.pairs_used <> [])

let test_comm_sequential_empty () =
  let e = Option.get (Finepar_kernels.Registry.find "lammps-1") in
  let _, _, _, _, comm = comm_of e.Finepar_kernels.Registry.kernel ~cores:1 in
  Alcotest.(check int) "no transfers on one core" 0 comm.Comm.com_ops

let () =
  Alcotest.run "transform"
    [
      ( "speculation",
        [
          Alcotest.test_case "applies to value selection" `Quick
            test_speculation_applies;
          Alcotest.test_case "preserves semantics" `Quick
            test_speculation_preserves_semantics;
          Alcotest.test_case "skips stores" `Quick test_speculation_skips_stores;
          Alcotest.test_case "skips accumulators" `Quick
            test_speculation_skips_accumulators;
          Alcotest.test_case "nested conditionals" `Quick
            test_speculation_skips_nested;
          Alcotest.test_case "one-sided branches" `Quick
            test_speculation_one_sided;
          Alcotest.test_case "all kernels preserve semantics" `Slow
            test_speculation_all_kernels_semantics;
        ] );
      ( "communication",
        [
          Alcotest.test_case "covers cross edges" `Quick
            test_comm_covers_cross_edges;
          Alcotest.test_case "anchors ordered" `Quick test_comm_anchors_ordered;
          Alcotest.test_case "per-queue FIFO seq" `Quick
            test_comm_seq_matches_enq_order;
          Alcotest.test_case "op counts" `Quick test_comm_counts;
          Alcotest.test_case "sequential has no comm" `Quick
            test_comm_sequential_empty;
        ] );
    ]
