(* Characterization tests: the Section IV funnel must reproduce exactly,
   each corpus loop must land in its bucket, the feature extractor must
   report sensible values, and the SIMD estimator must reproduce the
   paper's qualitative split. *)

open Finepar_ir
open Finepar_characterize
open Finepar_kernels
open Builder

let test_funnel_exact () =
  let f = Classify.funnel Corpus.all_hot_loops in
  Alcotest.(check int) "51 hot loops" 51 f.Classify.total;
  Alcotest.(check int) "6 initialization" 6 f.Classify.init;
  Alcotest.(check int) "16 elementwise" 16 f.Classify.elementwise;
  Alcotest.(check int) "8 scalar reductions" 8 f.Classify.scalar_reduction;
  Alcotest.(check int) "1 array reduction" 1 f.Classify.array_reduction;
  Alcotest.(check int) "2 conditional chains" 2 f.Classify.conditional_raw;
  Alcotest.(check int) "18 selected" 18 f.Classify.fine_grained

let test_all_kernels_fine_grained () =
  List.iter
    (fun (e : Registry.entry) ->
      Alcotest.(check string)
        (e.Registry.kernel.Kernel.name ^ " is a fine-grained candidate")
        "fine-grained candidate"
        (Classify.category_name (Classify.classify e.Registry.kernel)))
    Registry.all

let test_excluded_loops_bucketed () =
  let expect prefix category =
    List.iter
      (fun (k : Kernel.t) ->
        let name = k.Kernel.name in
        if
          String.length name >= String.length prefix
          && String.sub name 0 (String.length prefix) = prefix
        then
          Alcotest.(check string) name category
            (Classify.category_name (Classify.classify k)))
      Corpus.excluded
  in
  expect "init-" "initialization";
  expect "ew-" "loop-parallel (elementwise)";
  expect "dot-" "loop-parallel (scalar reduction)";
  expect "sum-" "loop-parallel (scalar reduction)";
  expect "amg-" "loop-parallel (array reduction)";
  expect "cond-chain" "conditional RAW chains"

let test_features () =
  let e = Option.get (Registry.find "umt2k-6") in
  let f = Classify.features e.Registry.kernel in
  Alcotest.(check int) "six conditionals" 6 f.Classify.conditionals;
  Alcotest.(check bool) "predicate RAW chain detected" true
    f.Classify.pred_raw_chain;
  let d = Option.get (Registry.find "irs-1") in
  let f1 = Classify.features d.Registry.kernel in
  Alcotest.(check int) "stencil has no conditionals" 0 f1.Classify.conditionals;
  Alcotest.(check bool) "stencil is big" true (f1.Classify.ops > 50)

let test_array_reduction_feature () =
  let k =
    kernel ~name:"ar" ~index:"i" ~lo:0 ~hi:8
      ~arrays:[ farr "y" 8; farr "x" 8; iarr "idx" 8 ]
      ~scalars:[]
      [
        store "y" (ld "idx" (v "i"))
          (ld "y" (ld "idx" (v "i")) +: ld "x" (v "i"));
      ]
  in
  Alcotest.(check bool) "gathered RMW detected" true
    (Classify.features k).Classify.array_rmw_gather

let test_is_loop_parallel () =
  Alcotest.(check bool) "elementwise is loop-parallel" true
    (Classify.is_loop_parallel Classify.Elementwise);
  Alcotest.(check bool) "fine-grained is not" false
    (Classify.is_loop_parallel Classify.Fine_grained);
  Alcotest.(check bool) "init is not" false
    (Classify.is_loop_parallel Classify.Init_loop)

(* ------------------------------------------------------------------ *)
(* SIMD estimates (the Section IV aside).                              *)

let simd name =
  let e = Option.get (Registry.find name) in
  (Simd.estimate e.Registry.kernel).Simd.simd_speedup

let test_simd_stencil_vectorizes () =
  Alcotest.(check bool) "irs-1 vectorizes well" true (simd "irs-1" > 2.0)

let test_simd_gathers_do_not () =
  (* lammps and sphot-2 gather through neighbor lists — "not suitable for
     SIMD" in the paper. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " barely vectorizes") true
        (simd name < 1.3))
    [ "lammps-1"; "lammps-3"; "lammps-4"; "sphot-2"; "umt2k-1"; "umt2k-4" ]

let test_simd_reductions_do_not () =
  Alcotest.(check bool) "pure conditional reduction does not vectorize" true
    (simd "umt2k-2" < 1.1)

let test_simd_width_scales () =
  let e = Option.get (Registry.find "irs-1") in
  let s2 = (Simd.estimate ~width:2 e.Registry.kernel).Simd.simd_speedup in
  let s8 = (Simd.estimate ~width:8 e.Registry.kernel).Simd.simd_speedup in
  Alcotest.(check bool) "wider SIMD, higher bound" true (s8 > s2)

let () =
  Alcotest.run "characterize"
    [
      ( "funnel",
        [
          Alcotest.test_case "Section IV funnel exact" `Quick test_funnel_exact;
          Alcotest.test_case "18 kernels fine-grained" `Quick
            test_all_kernels_fine_grained;
          Alcotest.test_case "excluded loops bucketed" `Quick
            test_excluded_loops_bucketed;
        ] );
      ( "features",
        [
          Alcotest.test_case "feature extraction" `Quick test_features;
          Alcotest.test_case "array reduction" `Quick
            test_array_reduction_feature;
          Alcotest.test_case "bucket partition" `Quick test_is_loop_parallel;
        ] );
      ( "simd",
        [
          Alcotest.test_case "stencil vectorizes" `Quick
            test_simd_stencil_vectorizes;
          Alcotest.test_case "gathers don't" `Quick test_simd_gathers_do_not;
          Alcotest.test_case "reductions don't" `Quick
            test_simd_reductions_do_not;
          Alcotest.test_case "width scales" `Quick test_simd_width_scales;
        ] );
    ]
