(* Dependence analysis tests: affine subscripts, use-def edges,
   loop-carried detection, multi-def co-location, control dependences,
   memory dependences, and the profile/cost models. *)

open Finepar_ir
open Finepar_analysis
open Builder

let region_of body ~arrays ~scalars ?(live_out = []) () =
  Region.of_kernel
    (kernel ~name:"t" ~index:"i" ~lo:0 ~hi:8 ~arrays ~scalars ~live_out body)

let analyze ?live_out ?(arrays = [ farr "a" 32; farr "b" 32; farr "out" 32 ])
    ?(scalars = [ fscalar "s"; fscalar ~init:1.0 "inv" ]) body =
  Deps.analyze (region_of body ~arrays ~scalars ?live_out ())

let has_edge deps ~kind_match src_var dst_var =
  (* Find an edge whose src defines [src_var] and dst defines/uses
     [dst_var]; variables identify statements in these small tests. *)
  let stmts = Array.of_list deps.Deps.region.Region.stmts in
  List.exists
    (fun (e : Deps.edge) ->
      kind_match e.Deps.kind
      && (match Region.sstmt_def stmts.(e.Deps.src) with
         | Some d -> String.equal d src_var
         | None -> false)
      &&
      match Region.sstmt_def stmts.(e.Deps.dst) with
      | Some d -> String.equal d dst_var
      | None -> dst_var = "<store>")
    deps.Deps.edges

(* ------------------------------------------------------------------ *)
(* Affine analysis.                                                    *)

let affine e = Affine.of_expr ~induction:"i" ~lookup:(fun _ -> None) e

let test_affine_forms () =
  Alcotest.(check bool) "constant" true (affine (i 7) = Some { Affine.k = 0; c = 7 });
  Alcotest.(check bool) "induction" true (affine (v "i") = Some { Affine.k = 1; c = 0 });
  Alcotest.(check bool) "i+3" true (affine (v "i" +: i 3) = Some { Affine.k = 1; c = 3 });
  Alcotest.(check bool) "2*i-1" true
    (affine ((i 2 *: v "i") -: i 1) = Some { Affine.k = 2; c = -1 });
  Alcotest.(check bool) "neg i" true (affine (neg (v "i")) = Some { Affine.k = -1; c = 0 });
  Alcotest.(check bool) "gather is not affine" true (affine (ld "idx" (v "i")) = None);
  Alcotest.(check bool) "i*i is not affine" true (affine (v "i" *: v "i") = None)

let test_affine_alias () =
  let a k c = Some { Affine.k; c } in
  Alcotest.(check bool) "same subscript aliases" true
    (Affine.may_alias (a 1 0) (a 1 0));
  Alcotest.(check bool) "i vs i+1 aliases across iterations" true
    (Affine.may_alias (a 1 0) (a 1 1));
  Alcotest.(check bool) "2i vs 2i+1 never alias" false
    (Affine.may_alias (a 2 0) (a 2 1));
  Alcotest.(check bool) "distinct constants don't alias" false
    (Affine.may_alias (a 0 3) (a 0 4));
  Alcotest.(check bool) "unknown aliases conservatively" true
    (Affine.may_alias None (a 1 0));
  Alcotest.(check bool) "same-iteration needs equality" false
    (Affine.same_iteration_alias (a 1 0) (a 1 1))

(* ------------------------------------------------------------------ *)
(* Scalar dependences.                                                 *)

let test_data_edge () =
  let deps =
    analyze
      [
        set "x" (ld "a" (v "i") *: f 2.0);
        store "out" (v "i") (v "x" +: f 1.0);
      ]
  in
  Alcotest.(check bool) "def-use edge present" true
    (has_edge deps "x" "<store>" ~kind_match:(function
      | Deps.Data "x" -> true
      | _ -> false))

let test_loop_carried () =
  let deps =
    analyze ~live_out:[ "s" ]
      [ set "s" (v "s" +: ld "a" (v "i")) ]
  in
  Alcotest.(check bool) "accumulator is loop-carried" true
    (Deps.SS.mem "s" deps.Deps.loop_carried)

let test_loop_carried_requires_declaration () =
  Alcotest.(check bool) "undeclared carried scalar rejected" true
    (try
       ignore (analyze [ set "x" (v "x" +: f 1.0) ]);
       false
     with Deps.Unsupported _ | Kernel.Invalid _ -> true)

let test_multi_def_co_location () =
  let deps =
    analyze
      [
        set "c" (ld "a" (v "i") >: f 1.0);
        if_ (v "c") [ set "x" (f 1.0) ] [ set "x" (f 2.0) ];
        store "out" (v "i") (v "x");
      ]
  in
  (* Both defs of x and its use must be pairwise co-located. *)
  let stmts = Array.of_list deps.Deps.region.Region.stmts in
  let x_stmts =
    List.filter_map
      (fun (s : Region.sstmt) ->
        match Region.sstmt_def s with
        | Some "x" -> Some s.Region.id
        | _ ->
          if Deps.SS.mem "x" (Region.sstmt_uses s) then Some s.Region.id
          else None)
      (Array.to_list stmts)
  in
  Alcotest.(check int) "three statements touch x" 3 (List.length x_stmts);
  (* must_merge must connect them all (as a connected component). *)
  let parent = Hashtbl.create 8 in
  let rec find i =
    match Hashtbl.find_opt parent i with
    | Some p when p <> i -> find p
    | _ -> i
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  List.iter (fun (a, b) -> union a b) deps.Deps.must_merge;
  match x_stmts with
  | first :: rest ->
    List.iter
      (fun s ->
        Alcotest.(check int) "co-located with first x stmt" (find first) (find s))
      rest
  | [] -> Alcotest.fail "no x statements"

let test_control_edge () =
  let deps =
    analyze
      [
        set "c" (ld "a" (v "i") >: f 1.0);
        when_ (v "c") [ store "out" (v "i") (f 1.0) ];
      ]
  in
  Alcotest.(check bool) "control edge from cnd def" true
    (List.exists
       (fun (e : Deps.edge) ->
         match e.Deps.kind with Deps.Control "c" -> true | _ -> false)
       deps.Deps.edges)

let test_conditional_def_scope_violation () =
  Alcotest.(check bool) "conditional def used unconditionally rejected" true
    (try
       ignore
         (analyze
            [
              set "c" (ld "a" (v "i") >: f 1.0);
              when_ (v "c") [ set "x" (f 1.0) ];
              store "out" (v "i") (v "x");
            ]);
       false
     with Deps.Unsupported _ -> true)

let test_live_in () =
  let deps = analyze [ store "out" (v "i") (v "inv" *: ld "a" (v "i")) ] in
  Alcotest.(check bool) "inv is live-in" true (Deps.SS.mem "inv" deps.Deps.live_in);
  Alcotest.(check bool) "induction is not live-in" false
    (Deps.SS.mem "i" deps.Deps.live_in)

let test_owners () =
  let deps =
    analyze ~live_out:[ "s" ]
      [ set "s" (ld "a" (v "i")); set "s" (v "s" *: f 2.0) ]
  in
  let stmts = Array.of_list deps.Deps.region.Region.stmts in
  (match Deps.SM.find_opt "s" deps.Deps.owners with
  | Some id ->
    Alcotest.(check bool) "owner is the last def" true
      (Region.sstmt_def stmts.(id) = Some "s"
      && id
         = List.fold_left max 0
             (List.filter_map
                (fun (s : Region.sstmt) ->
                  if Region.sstmt_def s = Some "s" then Some s.Region.id
                  else None)
                (Array.to_list stmts)))
  | None -> Alcotest.fail "no owner for s")

(* ------------------------------------------------------------------ *)
(* Memory dependences.                                                 *)

let count_mem deps =
  List.length
    (List.filter
       (fun (e : Deps.edge) ->
         match e.Deps.kind with Deps.Mem _ -> true | _ -> false)
       deps.Deps.edges)

let test_mem_rmw_same_index () =
  (* Deep enough that the fiber split separates the load from the store;
     the analysis must then pin them together and order them. *)
  let r =
    region_of
      [
        store "out" (v "i")
          (sqrt_ ((ld "out" (v "i") *: f 2.0) +: f 1.0) /: (ld "out" (v "i") +: f 3.0));
      ]
      ~arrays:[ farr "out" 32 ] ~scalars:[] ()
  in
  let split, _ = Finepar_fiber.Fiber.split r in
  let deps = Deps.analyze split in
  Alcotest.(check bool) "store-load same index must merge" true
    (deps.Deps.must_merge <> [])

let test_mem_disjoint_strides () =
  (* out[2i] stores never alias b[2i+1]-style loads of the same array. *)
  let deps =
    analyze
      ~arrays:[ farr "a" 32; farr "out" 64 ]
      [
        set "x" (ld "out" ((i 2 *: v "i") +: i 1));
        store "out" (i 2 *: v "i") (v "x" +: f 1.0);
      ]
  in
  Alcotest.(check int) "no memory edges between disjoint strides" 0
    (count_mem deps)

let test_mem_gather_conservative () =
  (* A gathered read-modify-write deep enough that the fiber split puts
     the loads and the store in different fibers: the analysis must then
     order and co-locate them (non-affine subscripts may alias anything
     on the same array). *)
  let r =
    region_of
      [
        set "j" (ld "idx" (v "i"));
        store "out" (v "j")
          (sqrt_ ((ld "out" (v "j") *: f 2.0) +: f 1.0)
          /: (ld "out" (v "j") +: f 3.0));
      ]
      ~arrays:[ farr "out" 32; iarr "idx" 32 ]
      ~scalars:[] ()
  in
  let split, _ = Finepar_fiber.Fiber.split r in
  let deps = Deps.analyze split in
  Alcotest.(check bool) "gathered RMW forces ordering" true
    (count_mem deps > 0 && deps.Deps.must_merge <> [])

let test_store_store_order () =
  let deps =
    analyze
      [
        store "out" (v "i") (f 1.0);
        store "out" (v "i") (f 2.0);
      ]
  in
  Alcotest.(check bool) "output dependence ordered" true (count_mem deps > 0)

(* ------------------------------------------------------------------ *)
(* Profile and cost.                                                   *)

let test_profile () =
  let p = Profile.of_counters [ ("a", 100, 50); ("b", 10, 0) ] in
  Alcotest.(check int) "50% misses" 23 (Profile.load_latency p "a");
  Alcotest.(check int) "all hits" 6 (Profile.load_latency p "b");
  Alcotest.(check int) "unknown array defaults to hits" 6
    (Profile.load_latency p "zzz")

let test_cost_monotone () =
  let r1 = region_of [ set "x" (ld "a" (v "i")) ]
      ~arrays:[ farr "a" 8 ] ~scalars:[] ()
  and r2 =
    region_of
      [ set "x" (sqrt_ (ld "a" (v "i") *: ld "a" (v "i"))) ]
      ~arrays:[ farr "a" 8 ] ~scalars:[] ()
  in
  let cost r =
    let tenv = Cost.region_tenv r in
    List.fold_left
      (fun acc s -> acc + Cost.sstmt_cycles ~tenv ~profile:Profile.all_hits s)
      0 r.Region.stmts
  in
  Alcotest.(check bool) "more work costs more" true (cost r2 > cost r1)

let () =
  Alcotest.run "analysis"
    [
      ( "affine",
        [
          Alcotest.test_case "forms" `Quick test_affine_forms;
          Alcotest.test_case "aliasing" `Quick test_affine_alias;
        ] );
      ( "scalar deps",
        [
          Alcotest.test_case "data edge" `Quick test_data_edge;
          Alcotest.test_case "loop-carried" `Quick test_loop_carried;
          Alcotest.test_case "carried must be declared" `Quick
            test_loop_carried_requires_declaration;
          Alcotest.test_case "multi-def co-location" `Quick
            test_multi_def_co_location;
          Alcotest.test_case "control edge" `Quick test_control_edge;
          Alcotest.test_case "scope violation rejected" `Quick
            test_conditional_def_scope_violation;
          Alcotest.test_case "live-in" `Quick test_live_in;
          Alcotest.test_case "owners" `Quick test_owners;
        ] );
      ( "memory deps",
        [
          Alcotest.test_case "same-index RMW" `Quick test_mem_rmw_same_index;
          Alcotest.test_case "disjoint strides free" `Quick
            test_mem_disjoint_strides;
          Alcotest.test_case "gather conservative" `Quick
            test_mem_gather_conservative;
          Alcotest.test_case "store-store ordered" `Quick
            test_store_store_order;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "profile feedback" `Quick test_profile;
          Alcotest.test_case "cost monotone" `Quick test_cost_monotone;
        ] );
    ]
