test/test_machine.ml: Alcotest Array Cache Config Finepar_ir Finepar_machine Isa Kernel List Program Sim String Types
