test/test_kernels.ml: Alcotest Array Corpus Eval Finepar_ir Finepar_kernels Float Irs Kernel Lammps List Option Printf Registry Sphot Stmt Types Umt2k Workload
