test/test_analysis.ml: Affine Alcotest Array Builder Cost Deps Finepar_analysis Finepar_fiber Finepar_ir Hashtbl Kernel List Profile Region String
