test/test_codegen.ml: Alcotest Array Config Finepar Finepar_codegen Finepar_ir Finepar_kernels Finepar_machine Fmt Hashtbl Isa Kernel List Option Printf Program Registry Sim Types
