test/test_characterize.ml: Alcotest Builder Classify Corpus Finepar_characterize Finepar_ir Finepar_kernels Kernel List Option Registry Simd String
