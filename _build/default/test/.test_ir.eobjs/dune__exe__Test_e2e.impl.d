test/test_e2e.ml: Alcotest Builder Expr Finepar Finepar_ir Finepar_kernels Finepar_machine Fmt Kernel List Option Printf QCheck QCheck_alcotest Registry Types Workload
