test/test_extensions.ml: Alcotest Array Config Finepar Finepar_codegen Finepar_ir Finepar_kernels Finepar_machine Fun Kernel List Option Printf Registry Sim
