test/test_characterize.mli:
