test/test_fiber.ml: Alcotest Builder Eval Expr Fiber Finepar_fiber Finepar_ir Finepar_kernels Fmt Hashtbl List Printf QCheck QCheck_alcotest Region String Types
