test/test_ir.ml: Alcotest Array Builder Eval Expr Finepar_ir Finepar_kernels Float Fmt Kernel List Printf QCheck QCheck_alcotest Region Types
