(* Code generation tests: structural invariants of the emitted machine
   programs — constant pooling, the runtime driver protocol (Section
   III-G), statically matched enqueue/dequeue counts per queue, valid
   branch targets, and live-out register bookkeeping. *)

open Finepar_ir
open Finepar_machine
open Finepar_kernels

let compiled ?(cores = 4) name =
  let e = Option.get (Registry.find name) in
  ( e,
    Finepar.Compiler.compile (Finepar.Compiler.default_config ~cores ())
      e.Registry.kernel )

let program (c : Finepar.Compiler.compiled) =
  c.Finepar.Compiler.code.Finepar_codegen.Lower.program

let iter_instrs p f =
  Array.iteri
    (fun core (cp : Program.core_program) ->
      Array.iteri (fun idx instr -> f ~core ~idx instr) cp.Program.code)
    p.Program.cores

(* ------------------------------------------------------------------ *)

let test_all_targets_valid () =
  List.iter
    (fun (e : Registry.entry) ->
      let c =
        Finepar.Compiler.compile
          (Finepar.Compiler.default_config ~cores:4 ())
          e.Registry.kernel
      in
      let p = program c in
      Array.iter
        (fun (cp : Program.core_program) ->
          let check_label l =
            Alcotest.(check bool) "label resolved" true
              (l >= 0
              && l < Array.length cp.Program.label_pos
              && cp.Program.label_pos.(l) >= 0
              && cp.Program.label_pos.(l) <= Array.length cp.Program.code)
          in
          Array.iter
            (fun instr ->
              match instr with
              | Isa.Bz (_, l) | Isa.Bnz (_, l) | Isa.Jmp l -> check_label l
              | _ -> ())
            cp.Program.code)
        p.Program.cores)
    Registry.all

let test_register_bounds () =
  List.iter
    (fun (e : Registry.entry) ->
      let c =
        Finepar.Compiler.compile
          (Finepar.Compiler.default_config ~cores:4 ())
          e.Registry.kernel
      in
      let p = program c in
      Array.iter
        (fun (cp : Program.core_program) ->
          Array.iter
            (fun instr ->
              let ok r = r >= 0 && r < cp.Program.n_regs in
              Alcotest.(check bool) "register ids in range" true
                (List.for_all ok (Isa.srcs instr)
                && match Isa.dst instr with Some d -> ok d | None -> true))
            cp.Program.code)
        p.Program.cores)
    Registry.all

let test_queue_pairing_dynamic () =
  (* The paper's "senders and receivers are always paired" requirement,
     observed at run time: after a complete run every queue has drained
     (the static Deq in the driver loop serves both the wake and the halt
     tokens, so purely static counts differ on the control queue). *)
  List.iter
    (fun name ->
      let e, c = compiled name in
      let sim =
        Sim.create ~config:Config.default ~initial:e.Registry.workload
          (program c)
      in
      ignore (Sim.run sim);
      Alcotest.(check bool)
        (name ^ ": every enqueued value was dequeued")
        true (Sim.queues_empty sim))
    Registry.names

let test_enqueue_on_producer_core_only () =
  List.iter
    (fun name ->
      let _, c = compiled name in
      let p = program c in
      iter_instrs p (fun ~core ~idx:_ instr ->
          match instr with
          | Isa.Enq (q, _) ->
            Alcotest.(check int) "enqueue on the queue's source core"
              p.Program.queues.(q).Isa.src core
          | Isa.Deq (_, q) ->
            Alcotest.(check int) "dequeue on the queue's destination core"
              p.Program.queues.(q).Isa.dst core
          | _ -> ()))
    Registry.names

let test_const_pool_dedup () =
  (* Secondary cores materialize each distinct literal at most once. *)
  let _, c = compiled "irs-5" in
  let p = program c in
  Array.iteri
    (fun core (cp : Program.core_program) ->
      if core > 0 then begin
        let seen = Hashtbl.create 16 in
        Array.iter
          (fun instr ->
            match instr with
            | Isa.Li (_, v) ->
              Alcotest.(check bool)
                (Fmt.str "core %d: literal %a pooled once" core
                   Types.pp_value v)
                false (Hashtbl.mem seen v);
              Hashtbl.replace seen v ()
            | _ -> ())
          cp.Program.code
      end)
    p.Program.cores

let test_driver_protocol_shape () =
  let _, c = compiled "lammps-1" in
  let p = program c in
  Array.iteri
    (fun core (cp : Program.core_program) ->
      let count pred =
        Array.fold_left
          (fun acc i -> if pred i then acc + 1 else acc)
          0 cp.Program.code
      in
      let halts = count (function Isa.Halt -> true | _ -> false) in
      Alcotest.(check int)
        (Printf.sprintf "core %d has exactly one halt" core)
        1 halts;
      if core > 0 then begin
        (* The driver: a dequeue of the wake token guarded by a Bz to the
           halt, and a back jump to the driver top. *)
        Alcotest.(check bool) "driver has a back jump" true
          (count (function Isa.Jmp _ -> true | _ -> false) >= 1);
        Alcotest.(check bool) "driver waits on the primary" true
          (count (function Isa.Deq _ -> true | _ -> false) >= 1)
      end)
    p.Program.cores

let test_live_out_regs () =
  let e, c = compiled "lammps-3" in
  let names =
    List.map fst c.Finepar.Compiler.code.Finepar_codegen.Lower.live_out_regs
  in
  Alcotest.(check (list string)) "live-out registers recorded"
    e.Registry.kernel.Kernel.live_out names

let test_sequential_has_no_queues () =
  let _, c = compiled ~cores:1 "lammps-1" in
  let p = program c in
  Alcotest.(check int) "one core" 1 (Array.length p.Program.cores);
  Alcotest.(check int) "no queues" 0 (Array.length p.Program.queues);
  iter_instrs p (fun ~core:_ ~idx:_ instr ->
      match instr with
      | Isa.Enq _ | Isa.Deq _ -> Alcotest.fail "queue op in sequential code"
      | _ -> ())

let test_loop_structure () =
  (* Every core's code contains a backward conditional branch (the loop)
     and the loop bound constant. *)
  let _, c = compiled "umt2k-4" in
  let p = program c in
  Array.iteri
    (fun core (cp : Program.core_program) ->
      let has_backedge = ref false in
      Array.iteri
        (fun idx instr ->
          match instr with
          | Isa.Bnz (_, l) when cp.Program.label_pos.(l) <= idx ->
            has_backedge := true
          | _ -> ())
        cp.Program.code;
      Alcotest.(check bool)
        (Printf.sprintf "core %d has a loop back-edge" core)
        true !has_backedge)
    p.Program.cores

let test_deterministic_codegen () =
  let _, c1 = compiled "sphot-2" in
  let _, c2 = compiled "sphot-2" in
  let p1 = program c1 and p2 = program c2 in
  Array.iteri
    (fun core (cp1 : Program.core_program) ->
      Alcotest.(check int)
        (Printf.sprintf "core %d same code size" core)
        (Array.length cp1.Program.code)
        (Array.length p2.Program.cores.(core).Program.code);
      Alcotest.(check bool) "identical instructions" true
        (cp1.Program.code = p2.Program.cores.(core).Program.code))
    p1.Program.cores

let () =
  Alcotest.run "codegen"
    [
      ( "structure",
        [
          Alcotest.test_case "branch targets valid" `Quick
            test_all_targets_valid;
          Alcotest.test_case "registers in range" `Quick test_register_bounds;
          Alcotest.test_case "loop back-edges" `Quick test_loop_structure;
          Alcotest.test_case "deterministic" `Quick test_deterministic_codegen;
        ] );
      ( "queues",
        [
          Alcotest.test_case "dynamically paired (drained)" `Quick
            test_queue_pairing_dynamic;
          Alcotest.test_case "ends on the right cores" `Quick
            test_enqueue_on_producer_core_only;
          Alcotest.test_case "sequential is queue-free" `Quick
            test_sequential_has_no_queues;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "constant pool dedup" `Quick test_const_pool_dedup;
          Alcotest.test_case "driver shape" `Quick test_driver_protocol_shape;
          Alcotest.test_case "live-out registers" `Quick test_live_out_regs;
        ] );
    ]
