(* Kernel registry and workload tests: every kernel's workload is
   deterministic and in bounds, the registry carries the paper's published
   data intact, and kernel structure matches the published descriptions. *)

open Finepar_ir
open Finepar_kernels

let test_registry_complete () =
  Alcotest.(check int) "18 kernels" 18 (List.length Registry.all);
  Alcotest.(check (list string)) "four applications"
    [ "lammps"; "irs"; "umt2k"; "sphot" ]
    Registry.apps;
  List.iter
    (fun app ->
      Alcotest.(check bool)
        (app ^ " has kernels")
        true
        (Registry.by_app app <> []))
    Registry.apps;
  Alcotest.(check int) "5 + 5 + 6 + 2 split" 18
    (List.length (Registry.by_app "lammps")
    + List.length (Registry.by_app "irs")
    + List.length (Registry.by_app "umt2k")
    + List.length (Registry.by_app "sphot"))

let test_pct_times_match_paper () =
  (* The paper gives coverage of application time: ~85% lammps, ~65% irs,
     ~50% umt2k, ~55% sphot (Section IV). *)
  let total app =
    List.fold_left
      (fun acc (e : Registry.entry) -> acc +. e.Registry.pct_time)
      0.0 (Registry.by_app app)
  in
  let near app expected =
    Alcotest.(check bool)
      (Printf.sprintf "%s covers ~%.0f%%" app expected)
      true
      (Float.abs (total app -. expected) < 5.0)
  in
  near "lammps" 87.0;
  near "irs" 65.3;
  near "umt2k" 48.0;
  near "sphot" 38.1

let test_paper_rows_positive () =
  List.iter
    (fun (e : Registry.entry) ->
      let p = e.Registry.paper in
      Alcotest.(check bool) "paper row sane" true
        (p.Registry.p_fibers > 0 && p.Registry.p_balance >= 1.0
        && p.Registry.p_speedup4 > 0.0 && p.Registry.p_queues <= 12))
    Registry.all

let test_workloads_in_bounds () =
  (* Every int array used as an index must stay within every array it
     gathers into; the reference evaluator enforces this at run time, so
     a plain sequential evaluation is the check. *)
  List.iter
    (fun (e : Registry.entry) ->
      ignore (Eval.run_result ~workload:e.Registry.workload e.Registry.kernel))
    Registry.all

let test_workloads_deterministic () =
  List.iter
    (fun (e : Registry.entry) ->
      let again =
        match e.Registry.app with
        | "lammps" -> Lammps.workload e.Registry.kernel
        | "irs" -> Irs.workload e.Registry.kernel
        | "umt2k" -> Umt2k.workload e.Registry.kernel
        | "sphot" -> Sphot.workload e.Registry.kernel
        | _ -> assert false
      in
      List.iter2
        (fun (n1, a1) (n2, a2) ->
          Alcotest.(check string) "same array order" n1 n2;
          Alcotest.(check bool) (n1 ^ " regenerates identically") true
            (Array.for_all2 Types.value_equal a1 a2))
        e.Registry.workload again)
    Registry.all

let test_workload_rng_ranges () =
  let r = Workload.rng 123 in
  for _ = 1 to 1000 do
    let x = Workload.float_in r 0.25 2.0 in
    Alcotest.(check bool) "float in range" true (x >= 0.25 && x < 2.0)
  done;
  let r = Workload.rng 77 in
  for _ = 1 to 1000 do
    let i = Workload.int_below r 17 in
    Alcotest.(check bool) "int below bound" true (i >= 0 && i < 17)
  done

let test_workload_ascending () =
  let r = Workload.rng 5 in
  let a = Workload.iarray_ascending r 64 ~max_step:3 in
  let prev = ref (-1) in
  Array.iter
    (fun v ->
      match v with
      | Types.VInt i ->
        Alcotest.(check bool) "monotone" true (i >= !prev);
        prev := i
      | Types.VFloat _ -> Alcotest.fail "not an int")
    a

let test_structure_matches_descriptions () =
  let body name = (Option.get (Registry.find name)).Registry.kernel.Kernel.body in
  let conditionals name =
    let c = ref 0 in
    Stmt.iter_block
      (fun s -> match s with Stmt.If _ -> incr c | _ -> ())
      (body name);
    !c
  in
  (* "7 of the 18 loops have no conditionals within the loop body". *)
  let unconditional =
    List.length
      (List.filter
         (fun (e : Registry.entry) ->
           conditionals e.Registry.kernel.Kernel.name = 0)
         Registry.all)
  in
  Alcotest.(check bool) "several kernels are branch-free" true
    (unconditional >= 5 && unconditional <= 9);
  (* umt2k-6 has the most conditional structure. *)
  Alcotest.(check bool) "umt2k-6 is conditional-heavy" true
    (conditionals "umt2k-6" >= 5);
  (* The big kernels are big; the small ones are small. *)
  Alcotest.(check bool) "irs-1 is the largest body" true
    (Stmt.op_count (body "irs-1")
    > Stmt.op_count (body "sphot-1"))

let test_live_outs_are_reductions () =
  (* Every declared live-out is actually written by the loop. *)
  List.iter
    (fun (e : Registry.entry) ->
      let written = Stmt.vars_written e.Registry.kernel.Kernel.body in
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (e.Registry.kernel.Kernel.name ^ " live-out " ^ v ^ " written")
            true
            (Stmt.String_set.mem v written))
        e.Registry.kernel.Kernel.live_out)
    Registry.all

let test_corpus_counts () =
  Alcotest.(check int) "33 excluded loops" 33 (List.length Corpus.excluded);
  Alcotest.(check int) "51 total hot loops" 51
    (List.length Corpus.all_hot_loops);
  (* All corpus loops evaluate cleanly. *)
  List.iter
    (fun (k : Kernel.t) ->
      ignore (Eval.run_result ~workload:(Workload.default k) k))
    Corpus.excluded

let () =
  Alcotest.run "kernels"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "time coverage" `Quick test_pct_times_match_paper;
          Alcotest.test_case "paper rows" `Quick test_paper_rows_positive;
          Alcotest.test_case "structure" `Quick
            test_structure_matches_descriptions;
          Alcotest.test_case "live-outs written" `Quick
            test_live_outs_are_reductions;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "in bounds" `Quick test_workloads_in_bounds;
          Alcotest.test_case "deterministic" `Quick
            test_workloads_deterministic;
          Alcotest.test_case "rng ranges" `Quick test_workload_rng_ranges;
          Alcotest.test_case "ascending arrays" `Quick test_workload_ascending;
        ] );
      ( "corpus",
        [ Alcotest.test_case "counts and evaluation" `Quick test_corpus_counts ]
      );
    ]
