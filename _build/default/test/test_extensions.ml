(* Tests of the extensions beyond the paper's measurements: SMT thread
   placement, the queue-count constraint, 8-core scaling, and the
   end-of-run protocol under those configurations.  Correctness is always
   the bit-exact check against the reference evaluator. *)

open Finepar_ir
open Finepar_kernels
open Finepar_machine

let compile4 ?(config = Finepar.Compiler.default_config ~cores:4 ()) k =
  Finepar.Compiler.compile config k

(* ------------------------------------------------------------------ *)
(* SMT placement.                                                      *)

let run_with_map (e : Registry.entry) map_of_threads =
  let c = compile4 e.Registry.kernel in
  let threads = c.Finepar.Compiler.stats.Finepar.Compiler.n_partitions in
  let core_map = map_of_threads threads in
  Finepar.Runner.run ~workload:e.Registry.workload ~core_map c

let test_smt_bit_exact () =
  (* Every placement must produce identical results; Runner.run raises
     Mismatch otherwise. *)
  List.iter
    (fun (e : Registry.entry) ->
      ignore (run_with_map e (fun t -> Array.make t 0));
      ignore (run_with_map e (fun t -> Array.init t (fun i -> i mod 2)));
      ignore (run_with_map e (fun t -> Array.init t (fun i -> i / 2))))
    Registry.all

let test_smt_shares_issue_slot () =
  (* All threads on one physical core can never beat the same code spread
     over four cores by more than measurement noise. *)
  let e = Option.get (Registry.find "irs-1") in
  let one = (run_with_map e (fun t -> Array.make t 0)).Finepar.Runner.cycles in
  let four = (run_with_map e (fun t -> Array.init t Fun.id)).Finepar.Runner.cycles in
  Alcotest.(check bool) "shared issue slot costs cycles" true (one > four)

let test_smt_hides_latency () =
  (* But SMT on one core still beats one thread on one core for kernels
     with long-latency chains: the threads fill each other's stalls. *)
  let e = Option.get (Registry.find "lammps-5") in
  let seq = Finepar.Compiler.compile_sequential e.Registry.kernel in
  let seq_cycles =
    (Finepar.Runner.run ~workload:e.Registry.workload seq).Finepar.Runner.cycles
  in
  let smt = (run_with_map e (fun t -> Array.make t 0)).Finepar.Runner.cycles in
  Alcotest.(check bool) "4 threads on 1 core beat 1 thread" true
    (smt < seq_cycles)

let test_smt_bad_map_rejected () =
  let e = Option.get (Registry.find "sphot-1") in
  let c = compile4 e.Registry.kernel in
  Alcotest.(check bool) "wrong core_map length rejected" true
    (try
       ignore
         (Sim.create ~core_map:[| 0 |] ~config:Config.default
            ~initial:e.Registry.workload
            c.Finepar.Compiler.code.Finepar_codegen.Lower.program);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Queue-count constraint.                                             *)

let queue_pairs_of (c : Finepar.Compiler.compiled) =
  c.Finepar.Compiler.stats.Finepar.Compiler.queue_pairs_static

let test_queue_limit_respected () =
  List.iter
    (fun (e : Registry.entry) ->
      List.iter
        (fun limit ->
          let config =
            {
              (Finepar.Compiler.default_config ~cores:4 ()) with
              Finepar.Compiler.max_queue_pairs = Some limit;
            }
          in
          let c = compile4 ~config e.Registry.kernel in
          Alcotest.(check bool)
            (Printf.sprintf "%s uses <= %d pairs"
               e.Registry.kernel.Kernel.name limit)
            true
            (queue_pairs_of c <= limit);
          (* And still runs bit-exact. *)
          ignore (Finepar.Runner.run ~workload:e.Registry.workload c))
        [ 6; 2; 0 ])
    Registry.all

let test_queue_limit_zero () =
  (* With no queues allowed, all communicating partitions collapse. *)
  let e = Option.get (Registry.find "lammps-3") in
  let config =
    {
      (Finepar.Compiler.default_config ~cores:4 ()) with
      Finepar.Compiler.max_queue_pairs = Some 0;
    }
  in
  let c = compile4 ~config e.Registry.kernel in
  Alcotest.(check int) "no cross-partition values" 0 (queue_pairs_of c)

(* ------------------------------------------------------------------ *)
(* Autotuning (Section III-I: multiple code versions + feedback).      *)

let test_autotune_picks_minimum () =
  let e = Option.get (Registry.find "lammps-1") in
  let t =
    Finepar.Runner.autotune ~cores:4 ~workload:e.Registry.workload
      e.Registry.kernel
  in
  List.iter
    (fun (n, cy) ->
      Alcotest.(check bool)
        (Printf.sprintf "best <= %s" n)
        true
        (t.Finepar.Runner.best_cycles <= cy))
    t.Finepar.Runner.candidates;
  Alcotest.(check int) "six candidates" 6
    (List.length t.Finepar.Runner.candidates)

let test_autotune_slowdown_kernel_goes_sequential () =
  (* umt2k-6 loses from fine-grained parallelization; the tuner must keep
     the sequential version. *)
  let e = Option.get (Registry.find "umt2k-6") in
  let t =
    Finepar.Runner.autotune ~cores:4 ~workload:e.Registry.workload
      e.Registry.kernel
  in
  Alcotest.(check string) "sequential wins" "sequential"
    t.Finepar.Runner.best_name

(* ------------------------------------------------------------------ *)
(* Scaling.                                                            *)

let test_eight_cores_bit_exact () =
  List.iter
    (fun (e : Registry.entry) ->
      let config = Finepar.Compiler.default_config ~cores:8 () in
      let c = Finepar.Compiler.compile config e.Registry.kernel in
      ignore (Finepar.Runner.run ~workload:e.Registry.workload c))
    Registry.all

let test_partitions_monotone () =
  let e = Option.get (Registry.find "irs-1") in
  let parts cores =
    (compile4 ~config:(Finepar.Compiler.default_config ~cores ())
       e.Registry.kernel)
      .Finepar.Compiler.stats
      .Finepar.Compiler.n_partitions
  in
  Alcotest.(check bool) "more cores, at least as many partitions" true
    (parts 2 <= parts 4 && parts 4 <= parts 8)

let () =
  Alcotest.run "extensions"
    [
      ( "smt",
        [
          Alcotest.test_case "all placements bit-exact" `Slow
            test_smt_bit_exact;
          Alcotest.test_case "shared issue slot" `Quick
            test_smt_shares_issue_slot;
          Alcotest.test_case "latency hiding" `Quick test_smt_hides_latency;
          Alcotest.test_case "bad map rejected" `Quick
            test_smt_bad_map_rejected;
        ] );
      ( "queue limit",
        [
          Alcotest.test_case "limit respected + bit-exact" `Slow
            test_queue_limit_respected;
          Alcotest.test_case "zero limit collapses" `Quick
            test_queue_limit_zero;
        ] );
      ( "autotune",
        [
          Alcotest.test_case "picks the minimum" `Quick
            test_autotune_picks_minimum;
          Alcotest.test_case "slowdown kernel stays sequential" `Quick
            test_autotune_slowdown_kernel_goes_sequential;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "8 cores bit-exact" `Slow
            test_eight_cores_bit_exact;
          Alcotest.test_case "partitions monotone" `Quick
            test_partitions_monotone;
        ] );
    ]
