(* Code-graph, merge and scheduling tests (Section III-B), including the
   throughput-heuristic invariant (final partitions form a DAG) and
   qcheck properties of the global schedule. *)

open Finepar_ir
open Finepar_analysis
open Finepar_partition
open Builder

let pipeline ?(max_height = 2) k =
  let r = Region.of_kernel ~max_height k in
  let split, _ = Finepar_fiber.Fiber.split r in
  let deps = Deps.analyze split in
  let graph = Code_graph.build ~profile:Profile.all_hits split deps in
  (split, deps, graph)

let medium_kernel =
  kernel ~name:"m" ~index:"i" ~lo:0 ~hi:16
    ~arrays:[ farr "a" 16; farr "b" 16; farr "c" 16; farr "o1" 16; farr "o2" 16 ]
    ~scalars:[ fscalar "acc" ]
    ~live_out:[ "acc" ]
    [
      set "x1" ((ld "a" (v "i") *: ld "b" (v "i")) +: f 0.5);
      set "x2" (sqrt_ (v "x1" +: f 1.0));
      set "y1" (ld "c" (v "i") /: (v "x1" +: f 2.0));
      set "y2" ((v "y1" *: v "y1") -: v "x2");
      set "acc" (v "acc" +: v "y2");
      store "o1" (v "i") (v "x2" *: f 3.0);
      store "o2" (v "i") (v "y1" +: v "y2");
    ]

(* ------------------------------------------------------------------ *)

let test_merge_reaches_core_count () =
  let _, _, graph = pipeline medium_kernel in
  List.iter
    (fun cores ->
      let res = Merge.run ~cores graph in
      Alcotest.(check bool)
        (Printf.sprintf "at most %d clusters" cores)
        true
        (res.Merge.n_clusters <= cores);
      Alcotest.(check bool) "at least one cluster" true (res.Merge.n_clusters >= 1))
    [ 1; 2; 4; 8 ]

let test_merge_respects_must_merge () =
  let _, deps, graph = pipeline medium_kernel in
  let res = Merge.run ~cores:4 graph in
  List.iter
    (fun (a, b) ->
      Alcotest.(check int)
        (Printf.sprintf "fibers %d and %d co-located" a b)
        res.Merge.cluster_of.(a) res.Merge.cluster_of.(b))
    deps.Deps.must_merge

let test_merge_cluster_ids_compact () =
  let _, _, graph = pipeline medium_kernel in
  let res = Merge.run ~cores:4 graph in
  let seen = Array.make res.Merge.n_clusters false in
  Array.iter (fun c -> seen.(c) <- true) res.Merge.cluster_of;
  Alcotest.(check bool) "every cluster id used" true (Array.for_all Fun.id seen)

let quotient_is_dag (graph : Code_graph.t) (res : Merge.result) =
  let n = res.Merge.n_clusters in
  let adj = Array.make n [] in
  List.iter
    (fun (e : Deps.edge) ->
      match e.Deps.kind with
      | Deps.Data _ | Deps.Control _ ->
        let a = res.Merge.cluster_of.(e.Deps.src)
        and b = res.Merge.cluster_of.(e.Deps.dst) in
        if a <> b then adj.(a) <- b :: adj.(a)
      | Deps.Anti _ | Deps.Mem _ -> ())
    graph.Code_graph.deps.Deps.edges;
  (* DFS cycle check. *)
  let color = Array.make n 0 in
  let rec visit u =
    if color.(u) = 1 then false
    else if color.(u) = 2 then true
    else begin
      color.(u) <- 1;
      let ok = List.for_all visit adj.(u) in
      color.(u) <- 2;
      ok
    end
  in
  List.for_all visit (List.init n Fun.id)

let test_throughput_heuristic_yields_dag () =
  List.iter
    (fun (e : Finepar_kernels.Registry.entry) ->
      let _, _, graph = pipeline e.Finepar_kernels.Registry.kernel in
      let res = Merge.run ~throughput:true ~cores:4 graph in
      Alcotest.(check bool)
        (e.Finepar_kernels.Registry.kernel.Kernel.name
        ^ ": unidirectional partitions")
        true
        (quotient_is_dag graph res))
    Finepar_kernels.Registry.all

let test_multipair_merges_faster () =
  let e = Option.get (Finepar_kernels.Registry.find "irs-1") in
  let _, _, graph = pipeline e.Finepar_kernels.Registry.kernel in
  let greedy = Merge.run ~algorithm:`Greedy ~cores:4 graph in
  let multi = Merge.run ~algorithm:`Multi_pair ~cores:4 graph in
  Alcotest.(check bool) "both reach the core count" true
    (greedy.Merge.n_clusters <= 4 && multi.Merge.n_clusters <= 4);
  Alcotest.(check bool) "same merge work overall" true
    (multi.Merge.merge_steps = greedy.Merge.merge_steps)

let test_load_balance_positive () =
  let _, _, graph = pipeline medium_kernel in
  let res = Merge.run ~cores:4 graph in
  Alcotest.(check bool) "balance >= 1" true (Merge.load_balance graph res >= 1.0)

(* ------------------------------------------------------------------ *)
(* Affinity heuristics.                                                *)

let cluster id est line =
  { Affinity.id; est; ops = est; line_lo = line; line_hi = line }

let test_affinity_prefers_connected () =
  let a = cluster 0 10 0 and b = cluster 1 10 1 and c = cluster 2 10 50 in
  let score ~edges x y =
    Affinity.score ~weights:Affinity.default ~edges ~max_edges:4
      ~max_pair_est:40 x y
  in
  Alcotest.(check bool) "edges raise affinity" true
    (score ~edges:4 a b > score ~edges:0 a b);
  Alcotest.(check bool) "proximity raises affinity" true
    (score ~edges:0 a b > score ~edges:0 a c);
  let big = cluster 3 38 2 in
  Alcotest.(check bool) "smaller pairs preferred" true
    (score ~edges:0 a b > score ~edges:0 a big)

let test_line_distance () =
  let a = { (cluster 0 1 0) with Affinity.line_lo = 2; line_hi = 5 }
  and b = { (cluster 1 1 0) with Affinity.line_lo = 8; line_hi = 9 }
  and c = { (cluster 2 1 0) with Affinity.line_lo = 4; line_hi = 7 } in
  Alcotest.(check int) "gap" 3 (Affinity.line_distance a b);
  Alcotest.(check int) "overlap is zero" 0 (Affinity.line_distance a c);
  Alcotest.(check int) "symmetric" 3 (Affinity.line_distance b a)

(* ------------------------------------------------------------------ *)
(* Scheduling.                                                         *)

let test_schedule_is_permutation () =
  let _, _, graph = pipeline medium_kernel in
  let res = Merge.run ~cores:4 graph in
  let order = Schedule.order graph ~cluster_of:res.Merge.cluster_of in
  let n = Code_graph.n_nodes graph in
  Alcotest.(check int) "every fiber scheduled once" n (List.length order);
  Alcotest.(check (list int)) "permutation of 0..n-1" (List.init n Fun.id)
    (List.sort compare order)

let test_schedule_topological () =
  let _, deps, graph = pipeline medium_kernel in
  let res = Merge.run ~cores:4 graph in
  let order = Schedule.order graph ~cluster_of:res.Merge.cluster_of in
  let pos = Array.make (List.length order) 0 in
  List.iteri (fun idx f -> pos.(f) <- idx) order;
  List.iter
    (fun (e : Deps.edge) ->
      Alcotest.(check bool)
        (Fmt.str "edge %a respected" Deps.pp_edge e)
        true
        (pos.(e.Deps.src) < pos.(e.Deps.dst)))
    deps.Deps.edges

let test_schedule_deterministic () =
  let _, _, graph = pipeline medium_kernel in
  let res = Merge.run ~cores:4 graph in
  let o1 = Schedule.order graph ~cluster_of:res.Merge.cluster_of in
  let o2 = Schedule.order graph ~cluster_of:res.Merge.cluster_of in
  Alcotest.(check (list int)) "same schedule twice" o1 o2

(* qcheck: across all registry kernels, scheduling is a valid topological
   permutation for every core count. *)
let prop_schedule_all_kernels =
  QCheck.Test.make ~count:18 ~name:"schedule valid for every kernel"
    (QCheck.make
       (QCheck.Gen.oneofl Finepar_kernels.Registry.all)
       ~print:(fun e -> e.Finepar_kernels.Registry.kernel.Kernel.name))
    (fun e ->
      let _, deps, graph = pipeline e.Finepar_kernels.Registry.kernel in
      List.for_all
        (fun cores ->
          let res = Merge.run ~cores graph in
          let order = Schedule.order graph ~cluster_of:res.Merge.cluster_of in
          let pos = Array.make (List.length order) 0 in
          List.iteri (fun idx f -> pos.(f) <- idx) order;
          List.length order = Code_graph.n_nodes graph
          && List.for_all
               (fun (e : Deps.edge) -> pos.(e.Deps.src) < pos.(e.Deps.dst))
               deps.Deps.edges)
        [ 1; 2; 4 ])

let () =
  Alcotest.run "partition"
    [
      ( "merge",
        [
          Alcotest.test_case "reaches core count" `Quick
            test_merge_reaches_core_count;
          Alcotest.test_case "respects must-merge" `Quick
            test_merge_respects_must_merge;
          Alcotest.test_case "compact cluster ids" `Quick
            test_merge_cluster_ids_compact;
          Alcotest.test_case "throughput heuristic yields DAG" `Quick
            test_throughput_heuristic_yields_dag;
          Alcotest.test_case "multi-pair variant" `Quick
            test_multipair_merges_faster;
          Alcotest.test_case "load balance sane" `Quick
            test_load_balance_positive;
        ] );
      ( "affinity",
        [
          Alcotest.test_case "heuristic ordering" `Quick
            test_affinity_prefers_connected;
          Alcotest.test_case "line distance" `Quick test_line_distance;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "permutation" `Quick test_schedule_is_permutation;
          Alcotest.test_case "topological" `Quick test_schedule_topological;
          Alcotest.test_case "deterministic" `Quick test_schedule_deterministic;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_schedule_all_kernels ] );
    ]
